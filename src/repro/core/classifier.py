"""Per-case defect classification and report aggregation.

The final step of the DeepMorph pipeline: given the footprint specifics of
every faulty case, decide which defect each case is evidence for, and report
the ratio of each defect type over all faulty cases.  The defect with the
highest ratio is the dominant defect of the target model — exactly what the
paper's Table I reports.

The paper does not spell out the per-case decision rule, so this module
implements the rule documented in DESIGN.md: each case is described by a
feature vector built from its footprint specifics plus two model-level
context signals (how concentrated the faulty cases are over true classes, and
how much the learned class execution patterns overlap), and three linear
scoring functions — one per defect type — turn that vector into defect
scores.  The default weights were calibrated on held-out defect-injection
runs with :mod:`repro.experiments.calibrate`; they are ordinary configuration
(see :class:`DefectClassifierConfig`) so ablation experiments can replace
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..defects.spec import DefectType
from ..exceptions import ConfigurationError
from .specifics import FootprintSpecifics

__all__ = [
    "DiagnosisContext",
    "DefectClassifierConfig",
    "CaseVerdict",
    "DefectReport",
    "DefectCaseClassifier",
    "FEATURE_NAMES",
    "build_feature_vector",
    "build_feature_matrix",
    "error_concentration",
]

#: Order of the features consumed by the linear scoring functions.
FEATURE_NAMES: Tuple[str, ...] = (
    "bias",
    "final_confidence",
    "commitment",
    "match_predicted",
    "match_true",
    "atypicality_true",
    "mean_entropy",
    "late_entropy",
    "nn_typicality_predicted",
    "nn_typicality_true",
    "stability",
    "divergence_point",
    "error_concentration",
    "pattern_overlap",
    "feature_quality",
    "training_inconsistency",
)


@dataclass(frozen=True)
class DiagnosisContext:
    """Model-level signals shared by every faulty case of one diagnosis.

    Attributes
    ----------
    error_concentration:
        How concentrated the faulty cases are over their true classes, in
        ``[0, 1]``.  Data defects (ITD, UTD) concentrate errors in the
        affected classes; structure defects spread them out.
    pattern_overlap:
        Mean similarity between different classes' execution patterns, in
        ``[0, 1]``.  A backbone that cannot separate the classes (structure
        defect) produces overlapping patterns.
    feature_quality:
        Best held-out probe accuracy over the hidden layers, rescaled so
        chance level is 0.
    training_inconsistency:
        Largest systematic disagreement between training labels and the
        trained model's own predictions on the training set, in ``[0, 1]``.
        Mislabeled training data produces a large value (the model either
        refuses to learn the wrong labels or flips the genuine ones).
    """

    error_concentration: float = 0.5
    pattern_overlap: float = 0.3
    feature_quality: float = 1.0
    training_inconsistency: float = 0.0


def error_concentration(true_labels: Sequence[int], num_classes: int, top_k: int = 3) -> float:
    """Share of faulty cases whose true class is among the ``top_k`` most affected classes.

    Rescaled so a uniform spread over ``num_classes`` classes maps to 0 and
    full concentration in ``top_k`` classes maps to 1.
    """
    labels = np.asarray(list(true_labels), dtype=np.int64)
    if labels.size == 0:
        return 0.0
    if num_classes <= 0:
        raise ConfigurationError(f"num_classes must be positive, got {num_classes}")
    top_k = max(1, min(int(top_k), num_classes))
    counts = np.bincount(labels, minlength=num_classes)
    top_share = float(np.sort(counts)[::-1][:top_k].sum() / labels.size)
    baseline = top_k / num_classes
    if baseline >= 1.0:
        return 1.0
    return float(np.clip((top_share - baseline) / (1.0 - baseline), 0.0, 1.0))


def build_feature_vector(
    specifics: FootprintSpecifics, context: DiagnosisContext
) -> np.ndarray:
    """Assemble the feature vector (ordered as :data:`FEATURE_NAMES`) for one case."""
    return np.array([
        1.0,
        specifics.final_confidence,
        specifics.commitment,
        specifics.match_predicted,
        specifics.match_true,
        specifics.atypicality_true,
        specifics.mean_entropy,
        specifics.late_entropy,
        specifics.nn_typicality_predicted,
        specifics.nn_typicality_true,
        specifics.stability,
        specifics.divergence_point,
        context.error_concentration,
        context.pattern_overlap,
        context.feature_quality,
        context.training_inconsistency,
    ], dtype=np.float64)


def build_feature_matrix(
    specifics: Sequence[FootprintSpecifics], context: DiagnosisContext
) -> np.ndarray:
    """Assemble all case feature vectors as one ``(N, F)`` matrix.

    The batched counterpart of :func:`build_feature_vector`: the context
    columns are broadcast once and the per-case columns are filled from the
    specifics, so the defect scores of a whole faulty-case batch reduce to a
    single ``(N, F) @ (F, D)`` product in
    :meth:`DefectCaseClassifier.classify_batch`.
    """
    n = len(specifics)
    matrix = np.empty((n, len(FEATURE_NAMES)), dtype=np.float64)
    matrix[:, 0] = 1.0
    matrix[:, 1] = [s.final_confidence for s in specifics]
    matrix[:, 2] = [s.commitment for s in specifics]
    matrix[:, 3] = [s.match_predicted for s in specifics]
    matrix[:, 4] = [s.match_true for s in specifics]
    matrix[:, 5] = [s.atypicality_true for s in specifics]
    matrix[:, 6] = [s.mean_entropy for s in specifics]
    matrix[:, 7] = [s.late_entropy for s in specifics]
    matrix[:, 8] = [s.nn_typicality_predicted for s in specifics]
    matrix[:, 9] = [s.nn_typicality_true for s in specifics]
    matrix[:, 10] = [s.stability for s in specifics]
    matrix[:, 11] = [s.divergence_point for s in specifics]
    matrix[:, 12] = context.error_concentration
    matrix[:, 13] = context.pattern_overlap
    matrix[:, 14] = context.feature_quality
    matrix[:, 15] = context.training_inconsistency
    return matrix


# Default scoring weights, one row per defect type, columns ordered as
# FEATURE_NAMES.  Calibrated with repro.experiments.calibrate on defect-
# injection runs (LeNet/AlexNet on the synthetic MNIST stand-in and
# ResNet/DenseNet on the synthetic CIFAR stand-in) that use different seeds
# from the Table I defaults; see EXPERIMENTS.md.
_DEFAULT_WEIGHTS: Dict[DefectType, Tuple[float, ...]] = {
    DefectType.ITD: (
        -0.3857,  # bias
        0.5394,  # final_confidence
        0.5680,  # commitment
        -1.5548,  # match_predicted
        -1.5386,  # match_true
        0.2658,  # atypicality_true
        -0.5833,  # mean_entropy
        -0.9438,  # late_entropy
        -0.7658,  # nn_typicality_predicted
        -0.5797,  # nn_typicality_true
        0.7375,  # stability
        -0.7206,  # divergence_point
        3.3296,  # error_concentration
        -0.7040,  # pattern_overlap
        -0.0148,  # feature_quality
        -0.5000,  # training_inconsistency (hand-set; see DESIGN.md)
    ),
    DefectType.UTD: (
        -0.4107,  # bias
        -0.4851,  # final_confidence
        -0.5684,  # commitment
        0.0861,  # match_predicted
        1.1256,  # match_true
        0.7024,  # atypicality_true
        0.2112,  # mean_entropy
        0.1467,  # late_entropy
        0.8433,  # nn_typicality_predicted
        -1.2671,  # nn_typicality_true
        1.4060,  # stability
        -0.1002,  # divergence_point
        -0.7514,  # error_concentration
        -2.9065,  # pattern_overlap
        -0.4620,  # feature_quality
        3.0000,  # training_inconsistency (hand-set; see DESIGN.md)
    ),
    DefectType.SD: (
        0.7866,  # bias
        -0.0541,  # final_confidence
        0.0003,  # commitment
        1.4676,  # match_predicted
        0.4124,  # match_true
        -0.9672,  # atypicality_true
        0.3715,  # mean_entropy
        0.7973,  # late_entropy
        -0.0776,  # nn_typicality_predicted
        1.8469,  # nn_typicality_true
        -2.1210,  # stability
        0.8208,  # divergence_point
        -2.6136,  # error_concentration
        3.6128,  # pattern_overlap
        0.4711,  # feature_quality
        -0.5000,  # training_inconsistency (hand-set; see DESIGN.md)
    ),
}


@dataclass(frozen=True)
class DefectClassifierConfig:
    """Weights and knobs of the per-case defect scoring rule.

    Attributes
    ----------
    weights:
        Mapping from defect type to the linear weights applied to the feature
        vector (ordered as :data:`FEATURE_NAMES`).
    soft_assignment:
        When ``True`` (default), each case contributes its softmax-normalized
        score vector to the ratios; when ``False``, each case contributes only
        its argmax verdict.
    temperature:
        Softmax temperature of the soft assignment (lower = closer to argmax).
    """

    weights: Dict[DefectType, Tuple[float, ...]] = field(
        default_factory=lambda: {k: tuple(v) for k, v in _DEFAULT_WEIGHTS.items()}
    )
    soft_assignment: bool = True
    temperature: float = 1.0

    def __post_init__(self):
        expected = {DefectType.ITD, DefectType.UTD, DefectType.SD}
        if set(self.weights) != expected:
            raise ConfigurationError(
                f"weights must cover exactly {sorted(d.value for d in expected)}, "
                f"got {sorted(d.value for d in self.weights)}"
            )
        for defect, row in self.weights.items():
            if len(row) != len(FEATURE_NAMES):
                raise ConfigurationError(
                    f"weights for {defect.value} must have {len(FEATURE_NAMES)} entries "
                    f"(one per feature), got {len(row)}"
                )
        if self.temperature <= 0:
            raise ConfigurationError(f"temperature must be positive, got {self.temperature}")

    def weight_matrix(self) -> np.ndarray:
        """The weights as a ``(3, num_features)`` array ordered ITD, UTD, SD."""
        return np.array([
            self.weights[DefectType.ITD],
            self.weights[DefectType.UTD],
            self.weights[DefectType.SD],
        ], dtype=np.float64)

    @classmethod
    def from_weight_matrix(
        cls, matrix: np.ndarray, soft_assignment: bool = True, temperature: float = 0.35
    ) -> "DefectClassifierConfig":
        """Build a config from a ``(3, num_features)`` array ordered ITD, UTD, SD."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.shape != (3, len(FEATURE_NAMES)):
            raise ConfigurationError(
                f"weight matrix must have shape (3, {len(FEATURE_NAMES)}), got {matrix.shape}"
            )
        return cls(
            weights={
                DefectType.ITD: tuple(matrix[0]),
                DefectType.UTD: tuple(matrix[1]),
                DefectType.SD: tuple(matrix[2]),
            },
            soft_assignment=soft_assignment,
            temperature=temperature,
        )


@dataclass(frozen=True)
class CaseVerdict:
    """The classification of a single faulty case."""

    specifics: FootprintSpecifics
    scores: Dict[DefectType, float]
    evidence: Dict[DefectType, float]
    verdict: DefectType

    def as_dict(self) -> Dict:
        return {
            "verdict": self.verdict.value,
            "scores": {k.value: v for k, v in self.scores.items()},
            "evidence": {k.value: v for k, v in self.evidence.items()},
            "specifics": self.specifics.as_dict(),
        }


@dataclass
class DefectReport:
    """Aggregated diagnosis over all faulty cases of one model.

    Attributes
    ----------
    ratios:
        Fraction of defect evidence assigned to each defect type (sums to 1).
    counts:
        Number of faulty cases whose hard verdict was each type.
    num_cases:
        Total number of faulty cases diagnosed.
    verdicts:
        The per-case verdicts (kept for drill-down and ablation).
    context:
        The model-level context signals used during scoring.
    metadata:
        Free-form experiment context (model kind, dataset, injected defect, ...).
    """

    ratios: Dict[DefectType, float]
    counts: Dict[DefectType, int]
    num_cases: int
    verdicts: List[CaseVerdict] = field(default_factory=list)
    context: Optional[DiagnosisContext] = None
    metadata: Dict = field(default_factory=dict)

    @property
    def dominant_defect(self) -> DefectType:
        """The defect with the highest ratio (the paper's reported diagnosis)."""
        return max(self.ratios, key=lambda defect: self.ratios[defect])

    def ratio(self, defect: "DefectType | str") -> float:
        """The ratio of one defect type."""
        if isinstance(defect, str):
            defect = DefectType.from_string(defect)
        return float(self.ratios.get(defect, 0.0))

    def as_dict(self) -> Dict:
        """JSON-friendly representation (omits per-case verdict details).

        Delegates to the canonical ``v1`` schema of
        :class:`repro.api.schema.DiagnosisReport`, so this dict IS the wire
        document the serving front ends emit.  (Imported lazily: the api
        package depends on this module.)
        """
        from ..api.schema import DiagnosisReport

        return DiagnosisReport.from_defect_report(self).to_dict()

    def format_row(self) -> str:
        """The report as a Table-I-style row: ``ITD  UTD  SD`` ratios."""
        return "  ".join(
            f"{defect.value.upper()}={self.ratios.get(defect, 0.0):.3f}"
            for defect in (DefectType.ITD, DefectType.UTD, DefectType.SD)
        )

    def summary(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"Diagnosed {self.num_cases} faulty case(s)",
            f"  ratios: {self.format_row()}",
            f"  dominant defect: {self.dominant_defect.value.upper()}",
        ]
        if self.metadata:
            pairs = ", ".join(f"{k}={v}" for k, v in sorted(self.metadata.items()))
            lines.append(f"  context: {pairs}")
        return "\n".join(lines)


class DefectCaseClassifier:
    """Scores footprint specifics and aggregates per-case verdicts into a report."""

    _ORDER = (DefectType.ITD, DefectType.UTD, DefectType.SD)

    def __init__(self, config: Optional[DefectClassifierConfig] = None):
        self.config = config or DefectClassifierConfig()

    # -- per-case scoring -------------------------------------------------------

    def scores(
        self, specifics: FootprintSpecifics, context: Optional[DiagnosisContext] = None
    ) -> Dict[DefectType, float]:
        """Raw linear defect scores for one case."""
        context = context or DiagnosisContext()
        features = build_feature_vector(specifics, context)
        raw = self.config.weight_matrix() @ features
        return {defect: float(raw[i]) for i, defect in enumerate(self._ORDER)}

    def classify_case(
        self, specifics: FootprintSpecifics, context: Optional[DiagnosisContext] = None
    ) -> CaseVerdict:
        """Score one case — a thin view over the batched core (``N = 1``)."""
        return self.classify_batch([specifics], context)[0]

    def classify_case_reference(
        self, specifics: FootprintSpecifics, context: Optional[DiagnosisContext] = None
    ) -> CaseVerdict:
        """Per-case scoring loop retained as the batched core's parity reference."""
        scores = self.scores(specifics, context)
        raw = np.array([scores[d] for d in self._ORDER], dtype=np.float64)
        if self.config.soft_assignment:
            logits = raw / self.config.temperature
            logits -= logits.max()
            weights = np.exp(logits)
            weights /= weights.sum()
        else:
            weights = np.zeros_like(raw)
            weights[int(raw.argmax())] = 1.0
        evidence = {defect: float(w) for defect, w in zip(self._ORDER, weights)}
        verdict = self._ORDER[int(raw.argmax())]
        return CaseVerdict(specifics=specifics, scores=scores, evidence=evidence, verdict=verdict)

    # -- batched scoring ------------------------------------------------------------

    def score_matrix(
        self, specifics: Sequence[FootprintSpecifics], context: Optional[DiagnosisContext] = None
    ) -> np.ndarray:
        """Raw linear defect scores of a whole batch: ``(N, D)`` ordered ITD, UTD, SD.

        One ``(N, F) @ (F, D)`` matrix product instead of N per-case
        matrix-vector products — the batched core every scoring API sits on.
        """
        context = context or DiagnosisContext()
        features = build_feature_matrix(specifics, context)
        return features @ self.config.weight_matrix().T

    def _evidence_weights(self, raw: np.ndarray) -> np.ndarray:
        """Per-case evidence weights (``(N, D)``) from raw scores, vectorized."""
        if self.config.soft_assignment:
            logits = raw / self.config.temperature
            logits = logits - logits.max(axis=1, keepdims=True)
            weights = np.exp(logits)
            weights /= weights.sum(axis=1, keepdims=True)
            return weights
        weights = np.zeros_like(raw)
        weights[np.arange(raw.shape[0]), raw.argmax(axis=1)] = 1.0
        return weights

    def _score_batch(
        self,
        specifics: Sequence[FootprintSpecifics],
        context: Optional[DiagnosisContext],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[CaseVerdict]]:
        """Batched scoring core shared by :meth:`classify_batch` and :meth:`aggregate`.

        Returns ``(raw scores, evidence weights, verdict indices, verdicts)``
        so aggregation can reduce over the arrays while handing the per-case
        verdict objects to the report.
        """
        raw = self.score_matrix(specifics, context)
        weights = self._evidence_weights(raw)
        verdict_indices = raw.argmax(axis=1)
        verdicts = [
            CaseVerdict(
                specifics=s,
                scores={defect: float(raw[i, j]) for j, defect in enumerate(self._ORDER)},
                evidence={defect: float(weights[i, j]) for j, defect in enumerate(self._ORDER)},
                verdict=self._ORDER[int(verdict_indices[i])],
            )
            for i, s in enumerate(specifics)
        ]
        return raw, weights, verdict_indices, verdicts

    def classify_batch(
        self,
        specifics: Sequence[FootprintSpecifics],
        context: Optional[DiagnosisContext] = None,
    ) -> List[CaseVerdict]:
        """Score every case of a batch through the single-matmul core."""
        specifics = list(specifics)
        if not specifics:
            return []
        return self._score_batch(specifics, context)[3]

    # -- aggregation ---------------------------------------------------------------

    def build_context(
        self,
        specifics: Sequence[FootprintSpecifics],
        num_classes: int,
        pattern_overlap: float = 0.3,
        feature_quality: float = 1.0,
        training_inconsistency: float = 0.0,
    ) -> DiagnosisContext:
        """Derive the model-level context from the faulty cases and library stats."""
        concentration = error_concentration(
            [s.true_label for s in specifics], num_classes=num_classes
        )
        return DiagnosisContext(
            error_concentration=concentration,
            pattern_overlap=float(pattern_overlap),
            feature_quality=float(feature_quality),
            training_inconsistency=float(training_inconsistency),
        )

    def aggregate(
        self,
        specifics: Sequence[FootprintSpecifics],
        context: Optional[DiagnosisContext] = None,
        metadata: Optional[Dict] = None,
    ) -> DefectReport:
        """Classify every faulty case and aggregate the evidence into a report.

        Batched: one ``(N, F) @ (F, D)`` score matrix, vectorized evidence
        softmax, and array reductions for the counts and ratios.  The per-case
        verdict objects are still materialized for drill-down and ablation.
        """
        specifics = list(specifics)
        if not specifics:
            raise ConfigurationError(
                "cannot aggregate an empty list of faulty cases; the model produced no "
                "misclassifications to diagnose"
            )
        context = context or DiagnosisContext()
        _, weights, verdict_indices, verdicts = self._score_batch(specifics, context)

        evidence_totals = weights.sum(axis=0)
        count_values = np.bincount(verdict_indices, minlength=len(self._ORDER))
        total = float(evidence_totals.sum())
        ratios = {
            defect: float(evidence_totals[j] / total) for j, defect in enumerate(self._ORDER)
        }
        counts = {defect: int(count_values[j]) for j, defect in enumerate(self._ORDER)}
        return DefectReport(
            ratios=ratios,
            counts=counts,
            num_cases=len(verdicts),
            verdicts=verdicts,
            context=context,
            metadata=dict(metadata or {}),
        )

    def aggregate_reference(
        self,
        specifics: Sequence[FootprintSpecifics],
        context: Optional[DiagnosisContext] = None,
        metadata: Optional[Dict] = None,
    ) -> DefectReport:
        """Per-case aggregation loop retained as the batched path's parity reference."""
        if not specifics:
            raise ConfigurationError(
                "cannot aggregate an empty list of faulty cases; the model produced no "
                "misclassifications to diagnose"
            )
        context = context or DiagnosisContext()
        verdicts = [self.classify_case_reference(s, context) for s in specifics]

        evidence_totals = {defect: 0.0 for defect in self._ORDER}
        counts = {defect: 0 for defect in self._ORDER}
        for verdict in verdicts:
            counts[verdict.verdict] += 1
            for defect in self._ORDER:
                evidence_totals[defect] += verdict.evidence[defect]

        total = sum(evidence_totals.values())
        ratios = {defect: evidence_totals[defect] / total for defect in self._ORDER}
        return DefectReport(
            ratios=ratios,
            counts=counts,
            num_cases=len(verdicts),
            verdicts=verdicts,
            context=context,
            metadata=dict(metadata or {}),
        )
