"""Client-side circuit breaking: stop retry storms at their source.

When a server is down, N clients each retrying M times multiply its recovery
load by N·M — the retry storm *is* the outage extender.  A
:class:`CircuitBreaker` makes the client stateful about it:

* **closed** (normal): calls pass through; consecutive failures are counted.
* **open**: after ``failure_threshold`` consecutive failures every call fails
  immediately with :class:`~repro.exceptions.CircuitOpenError` — no socket,
  no retries, no load on the struggling server — until ``reset_seconds``
  have passed.
* **half-open**: one trial call is let through; success closes the circuit,
  failure re-opens it for another ``reset_seconds``.  Concurrent callers
  during the trial keep getting :class:`CircuitOpenError` (exactly one probe
  per reset window).

The breaker is thread-safe and clock-injectable; it counts *outcomes*, so
the caller decides what a failure is (for :class:`~repro.api.RemoteDiagnoser`:
transport errors after its bounded retries, and 5xx/503 responses — a 400 is
the caller's bug, not the server's health).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict

from ..exceptions import CircuitOpenError, ConfigurationError

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState:
    """The three states (plain strings — they go to logs and repr as-is)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a single half-open probe."""

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_seconds: float = 5.0,
        name: str = "",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if int(failure_threshold) < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if float(reset_seconds) < 0:
            raise ConfigurationError(f"reset_seconds must be >= 0, got {reset_seconds}")
        self.failure_threshold = int(failure_threshold)
        self.reset_seconds = float(reset_seconds)
        self.name = str(name)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        self._transitions = 0

    # -- queries -----------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open_locked()
            return self._state

    @property
    def transitions(self) -> int:
        """State changes so far (observability; never consulted for behavior)."""
        with self._lock:
            return self._transitions

    def _maybe_half_open_locked(self) -> None:
        if (
            self._state == BreakerState.OPEN
            and self._clock() - self._opened_at >= self.reset_seconds
        ):
            self._state = BreakerState.HALF_OPEN
            self._probe_inflight = False
            self._transitions += 1

    # -- the call protocol ---------------------------------------------------------

    def allow(self) -> None:
        """Gate one call: raises :class:`CircuitOpenError` instead of letting it out.

        In half-open state exactly one caller is admitted as the probe; the
        admitting caller MUST follow up with :meth:`record_success` or
        :meth:`record_failure` (as must every closed-state caller).
        """
        with self._lock:
            self._maybe_half_open_locked()
            if self._state == BreakerState.CLOSED:
                return
            if self._state == BreakerState.HALF_OPEN and not self._probe_inflight:
                self._probe_inflight = True
                return
            remaining = max(0.0, self.reset_seconds - (self._clock() - self._opened_at))
            raise CircuitOpenError(
                f"circuit {self.name or 'breaker'} is {self._state}: "
                f"{self._consecutive_failures} consecutive failures",
                retry_after=remaining if self._state == BreakerState.OPEN else self.reset_seconds,
            )

    def record_success(self) -> None:
        with self._lock:
            if self._state != BreakerState.CLOSED:
                self._transitions += 1
            self._state = BreakerState.CLOSED
            self._consecutive_failures = 0
            self._probe_inflight = False

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if self._state == BreakerState.HALF_OPEN:
                self._open_locked()
            elif (
                self._state == BreakerState.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._open_locked()

    def _open_locked(self) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = self._clock()
        self._probe_inflight = False
        self._transitions += 1

    # -- export ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            self._maybe_half_open_locked()
            return {
                "name": self.name,
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "reset_seconds": self.reset_seconds,
                "transitions": self._transitions,
            }

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(name={self.name!r}, state={self.state!r}, "
            f"threshold={self.failure_threshold})"
        )
