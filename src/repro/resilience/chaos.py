"""Deterministic fault injection for the serving stack.

Fault tolerance that is never exercised is a hope, not a property.  This
module provides the exercise harness: a process-global
:class:`FaultInjector` (the in-place-mutation pattern of
``repro.obs.Tracer`` — components keep a reference, reconfiguration is
observed everywhere, and the disabled path costs a single attribute check)
with **named sites** compiled into the stack:

========================  =========================================================
site                      where it fires
========================  =========================================================
``gateway.read_body``     asyncio gateway, after the request body is read
``replica.dispatch``      ``DiagnosisService.diagnose``, before any pipeline work
``batching.drain``        the batching engine's drain thread, per coalesced batch
``remote.send``           ``RemoteDiagnoser``, before a request is written
``codec.decode``          both front ends, before the request body is decoded
========================  =========================================================

A :class:`FaultPlan` arms one site with a mode:

* ``delay`` — sleep ``delay_seconds`` before proceeding (slow dependency);
* ``hang`` — same mechanics, declared intent: a stall long enough to trip
  timeouts and health ejection (``delay_seconds`` defaults much higher);
* ``error`` — raise the named :mod:`repro.exceptions` class;
* ``drop`` — the caller severs the connection (client: reset mid-send,
  gateway: close without responding);
* ``corrupt`` — the caller flips bytes in the payload before decoding.

Draws are **seeded** (``random.Random(seed)``), and ``max_injections`` bounds
how many times a plan fires, so a chaos test is a deterministic script, not a
roll of dice: "hang the first three dispatches, then recover" is expressible
and replayable.  Plans load from a JSON spec (``repro-serve --chaos
spec.json``) or at runtime via ``POST /debug/chaos`` (loopback peers only).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Type, Union

from .. import exceptions
from ..exceptions import ConfigurationError, ReproError

__all__ = [
    "FAULT_SITES",
    "FAULT_MODES",
    "FaultPlan",
    "FaultInjector",
    "get_injector",
    "configure_chaos",
    "chaos_spec_from_dict",
    "corrupt_bytes",
]

#: The sites compiled into the serving stack.  Unknown sites are rejected at
#: configuration time — a typo must fail the spec, not silently never fire.
FAULT_SITES = frozenset(
    {
        "gateway.read_body",
        "replica.dispatch",
        "batching.drain",
        "remote.send",
        "codec.decode",
    }
)

FAULT_MODES = frozenset({"delay", "hang", "error", "drop", "corrupt"})

#: Caller-cooperative modes: :meth:`FaultInjector.inject` returns these as a
#: string instead of acting, because only the call site can sever its own
#: connection or corrupt its own buffer.
_RETURNED_MODES = frozenset({"drop", "corrupt"})


@dataclass(frozen=True)
class FaultPlan:
    """One armed fault: a site, a mode, and the knobs that shape it."""

    site: str
    mode: str
    probability: float = 1.0
    delay_seconds: float = 0.05
    error_type: str = "ServeError"
    message: str = "chaos: injected fault"
    #: How many times this plan may fire; ``None`` is unlimited.
    max_injections: Optional[int] = None

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ConfigurationError(
                f"unknown fault site {self.site!r}; known sites: {sorted(FAULT_SITES)}"
            )
        if self.mode not in FAULT_MODES:
            raise ConfigurationError(
                f"unknown fault mode {self.mode!r}; known modes: {sorted(FAULT_MODES)}"
            )
        if not 0.0 <= float(self.probability) <= 1.0:
            raise ConfigurationError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if float(self.delay_seconds) < 0:
            raise ConfigurationError(
                f"delay_seconds must be >= 0, got {self.delay_seconds}"
            )
        if self.max_injections is not None and int(self.max_injections) < 0:
            raise ConfigurationError(
                f"max_injections must be >= 0, got {self.max_injections}"
            )
        if self.mode == "error":
            _resolve_error(self.error_type)  # fail at arm time, not fire time

    def build_error(self) -> ReproError:
        """The exception an ``error`` plan injects (for async call sites that
        surface it through their own error path instead of raising here)."""
        return _resolve_error(self.error_type)(f"{self.message} at {self.site}")


def _resolve_error(name: str) -> Type[ReproError]:
    """Resolve an exception name against the repro hierarchy, and only it."""
    candidate = getattr(exceptions, str(name), None)
    if isinstance(candidate, type) and issubclass(candidate, ReproError):
        return candidate
    raise ConfigurationError(
        f"error_type {name!r} is not a repro exception class"
    )


def corrupt_bytes(payload: bytes) -> bytes:
    """Deterministically damage a payload (bit-flip the first byte).

    Enough to break any codec's magic/JSON while keeping the corruption
    reproducible; an empty payload stays empty (nothing to corrupt).
    """
    if not payload:
        return payload
    return bytes([payload[0] ^ 0xFF]) + payload[1:]


class _ArmedPlan:
    """A plan plus its mutable firing budget (internal to the injector)."""

    __slots__ = ("plan", "budget", "fired")

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.budget = None if plan.max_injections is None else int(plan.max_injections)
        self.fired = 0


class FaultInjector:
    """Process-global, seeded fault injector with named sites.

    Mutated in place (never replaced) so every compiled-in call site observes
    reconfiguration; disabled (the default) the per-site cost is one attribute
    check.  ``sleep`` is injectable so unit tests can assert delay plans
    without actually waiting.
    """

    def __init__(
        self,
        enabled: bool = False,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.enabled = bool(enabled)
        self._sleep = sleep
        self._lock = threading.Lock()
        self._plans: Dict[str, List[_ArmedPlan]] = {}
        self._rng = random.Random(0)
        self._seed = 0

    # -- configuration -----------------------------------------------------------

    def configure(self, plans: Sequence[FaultPlan], seed: int = 0) -> None:
        """Arm ``plans`` (replacing any current ones) and reseed the draws."""
        grouped: Dict[str, List[_ArmedPlan]] = {}
        for plan in plans:
            grouped.setdefault(plan.site, []).append(_ArmedPlan(plan))
        with self._lock:
            self._plans = grouped
            self._seed = int(seed)
            self._rng = random.Random(self._seed)
            self.enabled = bool(grouped)

    def disable(self) -> None:
        """Disarm everything (the compiled-in sites go back to one check)."""
        with self._lock:
            self.enabled = False
            self._plans = {}

    # -- firing ------------------------------------------------------------------

    def _draw(self, site: str) -> Optional[FaultPlan]:
        """The plan that fires at ``site`` for this call, if any (seeded)."""
        with self._lock:
            for armed in self._plans.get(site, ()):
                if armed.budget is not None and armed.budget <= 0:
                    continue
                probability = armed.plan.probability
                if probability < 1.0 and self._rng.random() >= probability:
                    continue
                if armed.budget is not None:
                    armed.budget -= 1
                armed.fired += 1
                return armed.plan
        return None

    def inject(self, site: str) -> Optional[str]:
        """Fire any armed plan at ``site`` (the synchronous call-site form).

        ``delay``/``hang`` sleep here; ``error`` raises its resolved
        exception; ``drop``/``corrupt`` return the mode string for the caller
        to act on.  Returns ``None`` when nothing fired.  Disabled cost: one
        attribute check.
        """
        if not self.enabled:
            return None
        plan = self._draw(site)
        if plan is None:
            return None
        _annotate_span(site, plan.mode)
        if plan.mode in ("delay", "hang"):
            self._sleep(plan.delay_seconds)
            return plan.mode
        if plan.mode == "error":
            raise _resolve_error(plan.error_type)(f"{plan.message} at {site}")
        return plan.mode  # drop / corrupt: the caller cooperates

    def planned(self, site: str) -> Optional[FaultPlan]:
        """Draw without acting — for async callers that must not block a loop.

        The gateway uses this: a ``delay`` plan becomes ``await
        asyncio.sleep(...)`` on the event loop instead of stalling every
        connection behind a blocking sleep.
        """
        if not self.enabled:
            return None
        plan = self._draw(site)
        if plan is not None:
            _annotate_span(site, plan.mode)
        return plan

    # -- introspection -----------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """The ``/debug/chaos`` document: armed plans and per-plan fire counts."""
        with self._lock:
            plans = [
                {
                    "site": armed.plan.site,
                    "mode": armed.plan.mode,
                    "probability": armed.plan.probability,
                    "fired": armed.fired,
                    "remaining_budget": armed.budget,
                }
                for site in sorted(self._plans)
                for armed in self._plans[site]
            ]
            return {"enabled": self.enabled, "seed": self._seed, "plans": plans}

    def __repr__(self) -> str:
        with self._lock:
            armed = sum(len(plans) for plans in self._plans.values())
        return f"FaultInjector(enabled={self.enabled}, plans={armed})"


def _annotate_span(site: str, mode: str) -> None:
    """Stamp the injection onto the active span, when one is recording."""
    from ..obs import current_span

    active = current_span()
    if active is not None and active.is_recording:
        active.set_attribute(f"chaos.{site}", mode)


#: The process-wide injector every compiled-in site consults.  Mutated in
#: place by :func:`configure_chaos`, never replaced.
_GLOBAL_INJECTOR = FaultInjector(enabled=False)


def get_injector() -> FaultInjector:
    """The process-wide fault injector (disabled until configured)."""
    return _GLOBAL_INJECTOR


def chaos_spec_from_dict(spec: Mapping[str, object]) -> "tuple[List[FaultPlan], int]":
    """Parse a chaos spec document into ``(plans, seed)``.

    Spec shape (the ``--chaos`` file and the ``POST /debug/chaos`` body)::

        {"seed": 7,
         "plans": [{"site": "replica.dispatch", "mode": "hang",
                    "delay_seconds": 2.0, "max_injections": 3}]}

    ``{"enabled": false}`` (or an empty/absent plan list) disarms.
    """
    if not isinstance(spec, Mapping):
        raise ConfigurationError("chaos spec must be a JSON object")
    if spec.get("enabled") is False:
        return [], int(spec.get("seed", 0) or 0)
    raw_plans = spec.get("plans", [])
    if not isinstance(raw_plans, Sequence) or isinstance(raw_plans, (str, bytes)):
        raise ConfigurationError("chaos spec 'plans' must be a list of plan objects")
    plans: List[FaultPlan] = []
    for raw in raw_plans:
        if not isinstance(raw, Mapping):
            raise ConfigurationError(f"chaos plan must be an object, got {raw!r}")
        unknown = set(raw) - {
            "site", "mode", "probability", "delay_seconds",
            "error_type", "message", "max_injections",
        }
        if unknown:
            raise ConfigurationError(f"unknown chaos plan field(s): {sorted(unknown)}")
        kwargs: Dict[str, object] = dict(raw)
        plans.append(FaultPlan(**kwargs))  # type: ignore[arg-type]
    try:
        seed = int(spec.get("seed", 0) or 0)
    except (TypeError, ValueError) as error:
        raise ConfigurationError(f"chaos spec 'seed' must be an integer: {error}") from error
    return plans, seed


def configure_chaos(
    spec: Union[Mapping[str, object], Sequence[FaultPlan], None],
    seed: Optional[int] = None,
) -> FaultInjector:
    """Arm the process-wide injector from a spec document or plan list.

    ``None`` (or an empty spec) disarms.  Returns the injector so callers can
    read :meth:`FaultInjector.stats` back.
    """
    injector = get_injector()
    if spec is None:
        injector.disable()
        return injector
    if isinstance(spec, Mapping):
        plans, spec_seed = chaos_spec_from_dict(spec)
        injector.configure(plans, seed=spec_seed if seed is None else int(seed))
        return injector
    injector.configure(list(spec), seed=0 if seed is None else int(seed))
    return injector
