"""Replica health: failure tracking, quarantine, and probed re-admission.

A replica that hangs or errors must stop receiving traffic *before* clients
notice — and must come back on its own once it recovers, because 3 a.m.
operators are not a failover mechanism.  This module is the health state
machine; :class:`~repro.serve.replicas.ReplicaPool` owns the wiring (routing
skips quarantined replicas, a supervisor thread probes them).

* :class:`HealthPolicy` — the knobs: consecutive-failure threshold, probe
  cadence, and the quarantine schedule (exponential per repeated ejection,
  capped, so a flapping replica is probed less and less often).
* :class:`ReplicaHealth` — one replica's state: ``healthy`` or
  ``quarantined``, consecutive/total failure counts, a rolling latency
  window, and the monotonic instant at which a quarantined replica becomes
  probe-eligible.

Only *infrastructure* faults count against health (engine timeouts, a
stopped engine); a client's bad request says nothing about the replica and
is classified out by the pool before it reaches :meth:`ReplicaHealth.record_failure`.
All mutation is lock-guarded — admission, release, and the supervisor thread
race on this state by design.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional

from ..exceptions import ConfigurationError

__all__ = ["HealthState", "HealthPolicy", "ReplicaHealth"]


class HealthState:
    """The two states of a replica (plain strings: they go straight to JSON)."""

    HEALTHY = "healthy"
    QUARANTINED = "quarantined"


@dataclass(frozen=True)
class HealthPolicy:
    """The knobs of replica supervision.

    ``failure_threshold`` consecutive infrastructure faults eject a replica;
    it is then probed every ``probe_interval_seconds`` once its quarantine
    lapse has passed.  The lapse starts at ``quarantine_seconds`` and
    multiplies by ``quarantine_backoff`` on every re-ejection (capped at
    ``max_quarantine_seconds``), so a replica that keeps failing its probes
    backs off instead of being hammered.  ``latency_window`` bounds the
    rolling latency sample kept per replica.
    """

    failure_threshold: int = 3
    probe_interval_seconds: float = 0.5
    quarantine_seconds: float = 0.5
    quarantine_backoff: float = 2.0
    max_quarantine_seconds: float = 30.0
    latency_window: int = 64

    def __post_init__(self) -> None:
        if int(self.failure_threshold) < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        for name in (
            "probe_interval_seconds",
            "quarantine_seconds",
            "max_quarantine_seconds",
        ):
            if float(getattr(self, name)) < 0:
                raise ConfigurationError(f"{name} must be >= 0, got {getattr(self, name)}")
        if float(self.quarantine_backoff) < 1.0:
            raise ConfigurationError(
                f"quarantine_backoff must be >= 1, got {self.quarantine_backoff}"
            )
        if int(self.latency_window) < 1:
            raise ConfigurationError(
                f"latency_window must be >= 1, got {self.latency_window}"
            )

    def quarantine_for(self, ejections: int) -> float:
        """The quarantine lapse after the ``ejections``-th ejection (1-based)."""
        lapse = float(self.quarantine_seconds) * (
            float(self.quarantine_backoff) ** max(0, int(ejections) - 1)
        )
        return min(lapse, float(self.max_quarantine_seconds))


class ReplicaHealth:
    """One replica's health state machine (thread-safe)."""

    def __init__(
        self,
        policy: Optional[HealthPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy if policy is not None else HealthPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self._state = HealthState.HEALTHY
        self._consecutive_failures = 0
        self._total_failures = 0
        self._total_successes = 0
        self._ejections = 0
        self._probe_eligible_at = 0.0
        self._latencies: Deque[float] = deque(maxlen=int(self.policy.latency_window))

    # -- queries -----------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def is_healthy(self) -> bool:
        return self.state == HealthState.HEALTHY

    @property
    def ejections(self) -> int:
        with self._lock:
            return self._ejections

    def probe_due(self) -> bool:
        """Whether a quarantined replica's lapse has passed (probe it now)."""
        with self._lock:
            return (
                self._state == HealthState.QUARANTINED
                and self._clock() >= self._probe_eligible_at
            )

    def latency_avg(self) -> Optional[float]:
        with self._lock:
            if not self._latencies:
                return None
            return sum(self._latencies) / len(self._latencies)

    # -- transitions ---------------------------------------------------------------

    def record_success(self, latency_seconds: Optional[float] = None) -> None:
        """A served request completed; resets the consecutive-failure streak."""
        with self._lock:
            self._total_successes += 1
            self._consecutive_failures = 0
            if latency_seconds is not None:
                self._latencies.append(float(latency_seconds))

    def record_failure(self, latency_seconds: Optional[float] = None) -> bool:
        """An infrastructure fault; returns ``True`` when this one ejects."""
        with self._lock:
            self._total_failures += 1
            self._consecutive_failures += 1
            if latency_seconds is not None:
                self._latencies.append(float(latency_seconds))
            if (
                self._state == HealthState.HEALTHY
                and self._consecutive_failures >= int(self.policy.failure_threshold)
            ):
                self._eject_locked()
                return True
            return False

    def record_probe_failure(self) -> None:
        """A supervisor probe failed: extend the quarantine (next backoff step)."""
        with self._lock:
            if self._state != HealthState.QUARANTINED:
                return
            self._ejections += 1
            self._probe_eligible_at = self._clock() + self.policy.quarantine_for(
                self._ejections
            )

    def eject(self) -> None:
        """Force the replica into quarantine (used by operators/tests)."""
        with self._lock:
            if self._state == HealthState.HEALTHY:
                self._eject_locked()

    def _eject_locked(self) -> None:
        self._state = HealthState.QUARANTINED
        self._ejections += 1
        self._probe_eligible_at = self._clock() + self.policy.quarantine_for(
            self._ejections
        )

    def readmit(self) -> None:
        """A probe succeeded: back to healthy with a clean failure streak."""
        with self._lock:
            self._state = HealthState.HEALTHY
            self._consecutive_failures = 0

    # -- export ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-native state for ``/healthz`` and ``/stats``."""
        with self._lock:
            average = (
                sum(self._latencies) / len(self._latencies) if self._latencies else None
            )
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "total_failures": self._total_failures,
                "total_successes": self._total_successes,
                "ejections": self._ejections,
                "latency_avg_seconds": average,
                "probe_eligible_in_seconds": (
                    max(0.0, self._probe_eligible_at - self._clock())
                    if self._state == HealthState.QUARANTINED
                    else None
                ),
            }

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"ReplicaHealth(state={self._state!r}, "
                f"consecutive_failures={self._consecutive_failures}, "
                f"ejections={self._ejections})"
            )
