"""Request deadlines: a propagated time budget instead of per-hop timeouts.

Per-hop timeouts compose badly: a 30 s socket timeout at the client, a 120 s
engine timeout at the service, and an unbounded queue wait in between mean a
request can spend minutes dying slowly while every individual stage believes
it is healthy.  A :class:`Deadline` is the caller's *total* budget, stamped on
the wire as ``X-Deadline-Ms`` (remaining milliseconds — relative, so clock
skew between client and server cannot corrupt it), re-anchored to the
server's monotonic clock on arrival, and carried through gateway → replica
pool → batching engine → service via a ``contextvars`` variable, exactly like
the active span in :mod:`repro.obs`.

Every stage that is about to spend real work asks :func:`check_deadline`
first; an expired budget raises
:class:`~repro.exceptions.DeadlineExceededError` (HTTP 504) *before* the work
is done, so a client that has already given up never costs an extraction.
The contextvar crosses ``await`` boundaries and — via ``copy_context`` in the
gateway's executor hop — worker threads for free; the batching engine's queue
is crossed explicitly by capturing :func:`current_deadline` at submit time
(the same pattern its trace context uses).
"""

from __future__ import annotations

import contextvars
import time
from typing import Callable, Optional

from ..exceptions import DeadlineExceededError

__all__ = [
    "Deadline",
    "DEADLINE_HEADER",
    "bind_deadline",
    "unbind_deadline",
    "current_deadline",
    "check_deadline",
    "remaining_budget",
]

#: Wire header carrying the remaining budget in integer milliseconds.
DEADLINE_HEADER = "X-Deadline-Ms"

#: Largest accepted budget (~30 days) — a hostile header cannot overflow
#: arithmetic or encode an effectively-infinite deadline that pins state.
MAX_DEADLINE_MS = 30 * 24 * 3600 * 1000

_current_deadline: "contextvars.ContextVar[Optional[Deadline]]" = contextvars.ContextVar(
    "repro_resilience_deadline", default=None
)


class Deadline:
    """An absolute point on the local monotonic clock by which work must finish."""

    __slots__ = ("_expires", "_clock")

    def __init__(
        self, expires_monotonic: float, clock: Callable[[], float] = time.monotonic
    ) -> None:
        self._expires = float(expires_monotonic)
        self._clock = clock

    @classmethod
    def after(
        cls, seconds: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """A deadline ``seconds`` from now on ``clock``."""
        return cls(clock() + float(seconds), clock=clock)

    @classmethod
    def from_header_ms(
        cls, value: Optional[str], clock: Callable[[], float] = time.monotonic
    ) -> "Optional[Deadline]":
        """Parse an ``X-Deadline-Ms`` header into a local deadline.

        The header carries *remaining milliseconds* (never an absolute
        timestamp), so it is immune to wall-clock skew between peers.
        Absent or malformed values yield ``None`` — a garbage header must
        not reject a request that never asked for a deadline; a negative or
        zero budget yields an already-expired deadline (the sender has
        given up, which is exactly what 504 should report).
        """
        if value is None:
            return None
        try:
            budget_ms = float(value.strip())
        except (ValueError, AttributeError):
            return None
        budget_ms = min(budget_ms, float(MAX_DEADLINE_MS))
        return cls(clock() + budget_ms / 1000.0, clock=clock)

    # -- queries -----------------------------------------------------------------

    def remaining(self) -> float:
        """Seconds left in the budget (negative once expired)."""
        return self._expires - self._clock()

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def covers(self, seconds: float) -> bool:
        """Whether the remaining budget can pay for a stage of ``seconds``."""
        return self.remaining() > float(seconds)

    def header_value(self) -> str:
        """The remaining budget as an ``X-Deadline-Ms`` value (floor 0)."""
        return str(max(0, int(self.remaining() * 1000.0)))

    def __repr__(self) -> str:
        return f"Deadline(remaining={self.remaining():.3f}s)"


# -- context propagation ------------------------------------------------------------


def bind_deadline(deadline: Optional[Deadline]) -> "contextvars.Token[Optional[Deadline]]":
    """Make ``deadline`` the current context's budget; returns the reset token."""
    return _current_deadline.set(deadline)


def unbind_deadline(token: "contextvars.Token[Optional[Deadline]]") -> None:
    _current_deadline.reset(token)


def current_deadline() -> Optional[Deadline]:
    """The deadline bound to the current context, if any."""
    return _current_deadline.get()


def check_deadline(stage: str, deadline: Optional[Deadline] = None) -> Optional[Deadline]:
    """Refuse to start ``stage`` on an expired budget.

    Uses the explicit ``deadline`` when given (queue-crossing callers), the
    context's otherwise.  Returns the effective deadline so callers can derive
    stage timeouts from it; raises
    :class:`~repro.exceptions.DeadlineExceededError` when it is already spent.
    """
    effective = deadline if deadline is not None else _current_deadline.get()
    if effective is not None and effective.expired():
        raise DeadlineExceededError(
            f"deadline expired {-effective.remaining():.3f}s before {stage}"
        )
    return effective


def remaining_budget(default: float, deadline: Optional[Deadline] = None) -> float:
    """A stage timeout: the smaller of ``default`` and the budget that is left.

    With no deadline in play the stage keeps its configured timeout; with one,
    the stage never waits beyond the caller's remaining patience.
    """
    effective = deadline if deadline is not None else _current_deadline.get()
    if effective is None:
        return float(default)
    return max(0.0, min(float(default), effective.remaining()))
