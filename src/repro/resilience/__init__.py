"""repro.resilience — fault tolerance as a tested subsystem, not a hope.

The dependability layer of the serving stack (the interlock/degraded-mode
analogue of the reproduction's instrumentation):

* :mod:`repro.resilience.deadline` — request deadlines propagated as a
  budget (``X-Deadline-Ms`` on the wire, a ``contextvars`` variable inside
  the process) so expired requests are refused *before* work is spent.
* :mod:`repro.resilience.chaos` — a process-global, seeded
  :class:`FaultInjector` with named sites compiled into the stack; the
  chaos harness that keeps the rest of this package honest.
* :mod:`repro.resilience.health` — per-replica failure/latency tracking,
  quarantine with exponential re-admission, and the policy knobs the
  :class:`~repro.serve.replicas.ReplicaPool` supervisor runs on.
* :mod:`repro.resilience.breaker` — a client-side circuit breaker
  (closed/open/half-open) so retry storms stop at their source.

Everything here is stdlib-only and imports nothing from :mod:`repro.serve`
(the serving stack imports *this* package), mirroring the cycle-free
discipline of :mod:`repro.obs`.
"""

from __future__ import annotations

from .breaker import BreakerState, CircuitBreaker
from .chaos import (
    FAULT_MODES,
    FAULT_SITES,
    FaultInjector,
    FaultPlan,
    chaos_spec_from_dict,
    configure_chaos,
    corrupt_bytes,
    get_injector,
)
from .deadline import (
    DEADLINE_HEADER,
    Deadline,
    bind_deadline,
    check_deadline,
    current_deadline,
    remaining_budget,
    unbind_deadline,
)
from .health import HealthPolicy, HealthState, ReplicaHealth

__all__ = [
    "Deadline",
    "DEADLINE_HEADER",
    "bind_deadline",
    "unbind_deadline",
    "current_deadline",
    "check_deadline",
    "remaining_budget",
    "FaultPlan",
    "FaultInjector",
    "FAULT_SITES",
    "FAULT_MODES",
    "get_injector",
    "configure_chaos",
    "chaos_spec_from_dict",
    "corrupt_bytes",
    "HealthPolicy",
    "HealthState",
    "ReplicaHealth",
    "BreakerState",
    "CircuitBreaker",
]
