"""Optimizers and learning-rate schedules for the numpy substrate."""

from .optimizers import SGD, Adam, AdamW, Optimizer, RMSProp, clip_gradients, get_optimizer
from .schedules import (
    ConstantSchedule,
    CosineAnnealing,
    ExponentialDecay,
    PiecewiseSchedule,
    Schedule,
    StepDecay,
    WarmupSchedule,
    get_schedule,
)

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "RMSProp",
    "get_optimizer",
    "clip_gradients",
    "Schedule",
    "ConstantSchedule",
    "StepDecay",
    "ExponentialDecay",
    "CosineAnnealing",
    "WarmupSchedule",
    "PiecewiseSchedule",
    "get_schedule",
]
