"""Learning-rate schedules.

A schedule maps an epoch index to a learning-rate value; the trainer applies
it by assigning to ``optimizer.lr`` at the start of each epoch.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence, Type

from ..exceptions import ConfigurationError

__all__ = [
    "Schedule",
    "ConstantSchedule",
    "StepDecay",
    "ExponentialDecay",
    "CosineAnnealing",
    "WarmupSchedule",
    "PiecewiseSchedule",
    "get_schedule",
]


class Schedule:
    """Base class of learning-rate schedules."""

    def __init__(self, base_lr: float):
        if base_lr <= 0:
            raise ConfigurationError(f"base_lr must be positive, got {base_lr}")
        self.base_lr = float(base_lr)

    def lr_at(self, epoch: int) -> float:
        """Learning rate to use during ``epoch`` (0-based)."""
        raise NotImplementedError

    def __call__(self, epoch: int) -> float:
        if epoch < 0:
            raise ValueError(f"epoch must be non-negative, got {epoch}")
        return self.lr_at(epoch)


class ConstantSchedule(Schedule):
    """The base learning rate, forever."""

    def lr_at(self, epoch: int) -> float:
        return self.base_lr


class StepDecay(Schedule):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, base_lr: float, step_size: int = 10, gamma: float = 0.1):
        super().__init__(base_lr)
        if step_size <= 0:
            raise ConfigurationError(f"step_size must be positive, got {step_size}")
        if not 0.0 < gamma <= 1.0:
            raise ConfigurationError(f"gamma must lie in (0, 1], got {gamma}")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def lr_at(self, epoch: int) -> float:
        return self.base_lr * (self.gamma ** (epoch // self.step_size))


class ExponentialDecay(Schedule):
    """Multiply the learning rate by ``gamma`` every epoch."""

    def __init__(self, base_lr: float, gamma: float = 0.95):
        super().__init__(base_lr)
        if not 0.0 < gamma <= 1.0:
            raise ConfigurationError(f"gamma must lie in (0, 1], got {gamma}")
        self.gamma = float(gamma)

    def lr_at(self, epoch: int) -> float:
        return self.base_lr * (self.gamma ** epoch)


class CosineAnnealing(Schedule):
    """Cosine annealing from ``base_lr`` down to ``min_lr`` over ``total_epochs``."""

    def __init__(self, base_lr: float, total_epochs: int, min_lr: float = 0.0):
        super().__init__(base_lr)
        if total_epochs <= 0:
            raise ConfigurationError(f"total_epochs must be positive, got {total_epochs}")
        if min_lr < 0 or min_lr > base_lr:
            raise ConfigurationError(f"min_lr must lie in [0, base_lr], got {min_lr}")
        self.total_epochs = int(total_epochs)
        self.min_lr = float(min_lr)

    def lr_at(self, epoch: int) -> float:
        progress = min(epoch, self.total_epochs) / self.total_epochs
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class WarmupSchedule(Schedule):
    """Linear warm-up for ``warmup_epochs`` epochs, then delegate to another schedule."""

    def __init__(self, inner: Schedule, warmup_epochs: int = 3):
        super().__init__(inner.base_lr)
        if warmup_epochs < 0:
            raise ConfigurationError(f"warmup_epochs must be non-negative, got {warmup_epochs}")
        self.inner = inner
        self.warmup_epochs = int(warmup_epochs)

    def lr_at(self, epoch: int) -> float:
        if self.warmup_epochs > 0 and epoch < self.warmup_epochs:
            return self.base_lr * (epoch + 1) / self.warmup_epochs
        return self.inner.lr_at(epoch)


class PiecewiseSchedule(Schedule):
    """Explicit per-boundary learning rates.

    ``boundaries=[5, 10]`` and ``values=[0.1, 0.01, 0.001]`` uses 0.1 for
    epochs 0-4, 0.01 for epochs 5-9, and 0.001 afterwards.
    """

    def __init__(self, boundaries: Sequence[int], values: Sequence[float]):
        if len(values) != len(boundaries) + 1:
            raise ConfigurationError(
                f"need len(values) == len(boundaries) + 1, got {len(values)} and {len(boundaries)}"
            )
        if list(boundaries) != sorted(boundaries):
            raise ConfigurationError(f"boundaries must be sorted, got {list(boundaries)}")
        if any(v <= 0 for v in values):
            raise ConfigurationError("all learning-rate values must be positive")
        super().__init__(values[0])
        self.boundaries = [int(b) for b in boundaries]
        self.values = [float(v) for v in values]

    def lr_at(self, epoch: int) -> float:
        for boundary, value in zip(self.boundaries, self.values):
            if epoch < boundary:
                return value
        return self.values[-1]


_REGISTRY: Dict[str, Type[Schedule]] = {
    "constant": ConstantSchedule,
    "step": StepDecay,
    "exponential": ExponentialDecay,
    "cosine": CosineAnnealing,
}


def get_schedule(name: str, base_lr: float, **kwargs) -> Schedule:
    """Build a schedule from its registry name."""
    key = name.lower()
    if key not in _REGISTRY:
        raise ConfigurationError(f"unknown schedule {name!r}; available: {sorted(_REGISTRY)}")
    return _REGISTRY[key](base_lr, **kwargs)
