"""Gradient-descent optimizers.

An optimizer holds a list of :class:`~repro.nn.module.Parameter` objects and
updates their ``data`` in place from their accumulated ``grad``.  Parameters
whose ``trainable`` flag is ``False`` are skipped, which is how the softmax
probes are trained against a frozen backbone.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Type

import numpy as np

from ..exceptions import ConfigurationError
from ..nn.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "RMSProp", "get_optimizer", "clip_gradients"]


def clip_gradients(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm does not exceed ``max_norm``.

    Returns the pre-clipping norm (useful for logging divergence).
    """
    if max_norm <= 0:
        raise ConfigurationError(f"max_norm must be positive, got {max_norm}")
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float(np.sum(p.grad ** 2)) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


class Optimizer:
    """Base class for optimizers."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ConfigurationError("optimizer received no parameters")
        self.lr = float(lr)
        self.iterations = 0

    def step(self) -> None:
        """Apply one update to every trainable parameter with a gradient."""
        for param in self.parameters:
            if not param.trainable or param.grad is None:
                continue
            self._update(param)
        self.iterations += 1

    def _update(self, param: Parameter) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for param in self.parameters:
            param.zero_grad()

    def state_dict(self) -> Dict[str, float]:
        """Scalar hyper-parameter state (for experiment logging)."""
        return {"lr": self.lr, "iterations": self.iterations}


class SGD(Optimizer):
    """Stochastic gradient descent with optional (Nesterov) momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        nesterov: bool = False,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must lie in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ConfigurationError(f"weight_decay must be non-negative, got {weight_decay}")
        if nesterov and momentum == 0.0:
            raise ConfigurationError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.nesterov = bool(nesterov)
        self.weight_decay = float(weight_decay)
        self._velocity: Dict[int, np.ndarray] = {}

    def _update(self, param: Parameter) -> None:
        grad = param.grad
        if self.weight_decay > 0:
            grad = grad + self.weight_decay * param.data
        if self.momentum > 0:
            vel = self._velocity.get(id(param))
            if vel is None:
                vel = np.zeros_like(param.data)
            vel = self.momentum * vel + grad
            self._velocity[id(param)] = vel
            if self.nesterov:
                grad = grad + self.momentum * vel
            else:
                grad = vel
        param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ConfigurationError(f"betas must lie in [0, 1), got ({beta1}, {beta2})")
        if eps <= 0:
            raise ConfigurationError(f"eps must be positive, got {eps}")
        if weight_decay < 0:
            raise ConfigurationError(f"weight_decay must be non-negative, got {weight_decay}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t: Dict[int, int] = {}

    def _update(self, param: Parameter) -> None:
        grad = param.grad
        if self.weight_decay > 0:
            grad = grad + self.weight_decay * param.data
        key = id(param)
        m = self._m.get(key)
        v = self._v.get(key)
        if m is None:
            m = np.zeros_like(param.data)
            v = np.zeros_like(param.data)
        t = self._t.get(key, 0) + 1

        m = self.beta1 * m + (1 - self.beta1) * grad
        v = self.beta2 * v + (1 - self.beta2) * (grad ** 2)
        self._m[key], self._v[key], self._t[key] = m, v, t

        m_hat = m / (1 - self.beta1 ** t)
        v_hat = v / (1 - self.beta2 ** t)
        param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def _update(self, param: Parameter) -> None:
        if self.weight_decay > 0:
            param.data -= self.lr * self.weight_decay * param.data
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super()._update(param)
        finally:
            self.weight_decay = decay


class RMSProp(Optimizer):
    """RMSProp optimizer."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.001,
        rho: float = 0.9,
        eps: float = 1e-8,
    ):
        super().__init__(parameters, lr)
        if not 0.0 <= rho < 1.0:
            raise ConfigurationError(f"rho must lie in [0, 1), got {rho}")
        if eps <= 0:
            raise ConfigurationError(f"eps must be positive, got {eps}")
        self.rho = float(rho)
        self.eps = float(eps)
        self._cache: Dict[int, np.ndarray] = {}

    def _update(self, param: Parameter) -> None:
        key = id(param)
        cache = self._cache.get(key)
        if cache is None:
            cache = np.zeros_like(param.data)
        cache = self.rho * cache + (1 - self.rho) * (param.grad ** 2)
        self._cache[key] = cache
        param.data -= self.lr * param.grad / (np.sqrt(cache) + self.eps)


_REGISTRY: Dict[str, Type[Optimizer]] = {
    "sgd": SGD,
    "adam": Adam,
    "adamw": AdamW,
    "rmsprop": RMSProp,
}


def get_optimizer(
    name: str, parameters: Iterable[Parameter], lr: Optional[float] = None, **kwargs
) -> Optimizer:
    """Build an optimizer from its registry name."""
    key = name.lower()
    if key not in _REGISTRY:
        raise ConfigurationError(f"unknown optimizer {name!r}; available: {sorted(_REGISTRY)}")
    cls = _REGISTRY[key]
    if lr is None:
        return cls(parameters, **kwargs)
    return cls(parameters, lr=lr, **kwargs)
