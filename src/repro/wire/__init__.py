"""``repro.wire`` — the pluggable codec layer of the serving stack.

One :class:`Codec` owns the whole bytes↔document boundary for one content
type; :class:`JsonCodec` (the default, byte-compatible with every pre-codec
client) and :class:`BinaryCodec` (framed raw-array transport) are registered
out of the box.  The serving front ends negotiate between them per request
(:func:`negotiate`), clients pick one by name (:func:`get_codec` via the
``wire_codec`` config knob), and :func:`request_digest` gives both encodings
one canonical cache identity.
"""

from __future__ import annotations

from .binary import FRAME_VERSION, MAGIC, BinaryCodec
from .codec import (
    Codec,
    JsonCodec,
    ReportLike,
    codec_for_accept,
    codec_for_content_type,
    codecs,
    default_codec,
    get_codec,
    negotiate,
    request_digest,
)

__all__ = [
    "Codec",
    "JsonCodec",
    "BinaryCodec",
    "ReportLike",
    "MAGIC",
    "FRAME_VERSION",
    "codecs",
    "get_codec",
    "codec_for_content_type",
    "codec_for_accept",
    "default_codec",
    "negotiate",
    "request_digest",
]
