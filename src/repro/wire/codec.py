"""The codec layer: one place a diagnosis document becomes wire bytes.

Before this package, serialization logic was smeared across four layers —
``api.schema``'s ``to_dict``/``from_dict``, ``serve.protocol``'s body
parsing, ``RemoteDiagnoser``'s hand-rolled encode, and the two HTTP front
ends — so no single component could negotiate or swap an encoding.  A
:class:`Codec` owns the whole bytes↔document boundary for one content type:

* :class:`JsonCodec` — the ``v1`` JSON format, extracted verbatim from the
  pre-codec stack.  It remains the default and the compatibility path; a
  payload it produces today is byte-compatible with every pre-codec client
  and server.
* :class:`~repro.wire.binary.BinaryCodec` — a framed binary encoding whose
  array payloads cross the wire as raw C-contiguous bytes (dtype/shape
  header + buffer), skipping the float→text→float round-trip that dominates
  thin-payload request latency.

Both codecs are **bitwise-interchangeable**: for the same
:class:`~repro.api.schema.DiagnosisRequest` they decode to equal documents,
so a server answers a JSON and a binary client with identical reports (and
the gateway's response cache, keyed on :func:`request_digest`, shares one
entry between them).

Codecs are resolved by name (:func:`get_codec`) or by HTTP media type
(:func:`codec_for_content_type` / :func:`codec_for_accept`) — the latter two
raise :class:`~repro.exceptions.UnsupportedMediaTypeError`, which the front
ends surface as 415.
"""

from __future__ import annotations

import abc
import hashlib
import json
from typing import Dict, Mapping, Optional, Tuple, Union

import numpy as np

from ..api.schema import DiagnosisReport, DiagnosisRequest, JsonDict
from ..exceptions import CodecError, ConfigurationError, UnsupportedMediaTypeError

__all__ = [
    "Codec",
    "JsonCodec",
    "ReportLike",
    "codecs",
    "get_codec",
    "codec_for_content_type",
    "codec_for_accept",
    "default_codec",
    "negotiate",
    "request_digest",
]

#: What the encode side accepts for a report: the typed object or its ``v1``
#: document (the serving layer already holds the dict form).
ReportLike = Union[DiagnosisReport, JsonDict]


class Codec(abc.ABC):
    """One wire encoding of the ``v1`` diagnosis documents.

    A codec is stateless and cheap to share; the registry below holds one
    instance per encoding.  ``encode_*`` never mutates its argument;
    ``decode_*`` validates everything it touches and raises only typed
    :class:`~repro.exceptions.ReproError` subclasses (so HTTP front ends map
    a malformed payload to a 4xx, never a 500).
    """

    #: Registry name (``"json"``/``"binary"``) — what config knobs name.
    name: str = ""
    #: The HTTP media type this codec owns (``Content-Type``/``Accept``).
    content_type: str = ""

    # -- requests -----------------------------------------------------------------

    @abc.abstractmethod
    def encode_request(self, request: DiagnosisRequest) -> bytes:
        """The request as wire bytes."""

    @abc.abstractmethod
    def decode_request(self, data: bytes) -> DiagnosisRequest:
        """Parse and validate wire bytes into a request."""

    # -- reports ------------------------------------------------------------------

    @abc.abstractmethod
    def encode_report(self, report: ReportLike) -> bytes:
        """The report (typed or already in ``v1`` dict form) as wire bytes."""

    @abc.abstractmethod
    def decode_report(self, data: bytes, cache_state: Optional[str] = None) -> DiagnosisReport:
        """Parse and validate wire bytes into a typed report."""

    # -- errors and auxiliary documents -------------------------------------------

    @abc.abstractmethod
    def encode_error(self, payload: JsonDict) -> bytes:
        """An ``{"error", "error_type", ...}`` document as wire bytes."""

    @abc.abstractmethod
    def decode_error(self, data: bytes) -> JsonDict:
        """Parse an error document from wire bytes."""

    @abc.abstractmethod
    def encode_document(self, document: JsonDict) -> bytes:
        """A free-form JSON-able document (job tickets, stats) as wire bytes."""

    @abc.abstractmethod
    def decode_document(self, data: bytes) -> JsonDict:
        """Parse a free-form document from wire bytes."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(content_type={self.content_type!r})"


def _report_document(report: ReportLike) -> JsonDict:
    """Normalize the encode-side report argument to its ``v1`` document."""
    if isinstance(report, DiagnosisReport):
        return report.to_dict()
    if isinstance(report, dict):
        return report
    raise ConfigurationError(
        f"encode_report takes a DiagnosisReport or its v1 dict, got {type(report).__name__}"
    )


def _parse_json_object(data: bytes, kind: str) -> JsonDict:
    """Decode bytes into the JSON object every document kind requires."""
    if not data:
        raise CodecError(f"{kind} body required")
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CodecError(f"invalid JSON {kind}: {error}") from error
    if not isinstance(payload, dict):
        raise CodecError(f"JSON {kind} must be an object")
    return payload


class JsonCodec(Codec):
    """The ``v1`` JSON wire format (the default and the compatibility path).

    Extracted verbatim from the pre-codec stack: requests/reports are the
    ``to_dict``/``from_dict`` documents of :mod:`repro.api.schema`, arrays
    ride as nested JSON lists, and the bytes are plain UTF-8 JSON — any
    pre-codec client or server interoperates unchanged.
    """

    name = "json"
    content_type = "application/json"

    def encode_request(self, request: DiagnosisRequest) -> bytes:
        return json.dumps(request.to_dict()).encode("utf-8")

    def decode_request(self, data: bytes) -> DiagnosisRequest:
        return DiagnosisRequest.from_dict(_parse_json_object(data, "request"))

    def encode_report(self, report: ReportLike) -> bytes:
        return json.dumps(_report_document(report)).encode("utf-8")

    def decode_report(self, data: bytes, cache_state: Optional[str] = None) -> DiagnosisReport:
        return DiagnosisReport.from_dict(
            _parse_json_object(data, "report"), cache_state=cache_state
        )

    def encode_error(self, payload: JsonDict) -> bytes:
        return json.dumps(payload).encode("utf-8")

    def decode_error(self, data: bytes) -> JsonDict:
        return _parse_json_object(data, "error document")

    def encode_document(self, document: JsonDict) -> bytes:
        return json.dumps(document).encode("utf-8")

    def decode_document(self, data: bytes) -> JsonDict:
        return _parse_json_object(data, "document")


# -- the registry --------------------------------------------------------------------


_BY_NAME: Dict[str, Codec] = {}
_BY_CONTENT_TYPE: Dict[str, Codec] = {}


def _registry() -> Dict[str, Codec]:
    # Built lazily: BinaryCodec subclasses Codec from this module, so an
    # import-time registry would be a circular import.
    if not _BY_NAME:
        from .binary import BinaryCodec

        for codec in (JsonCodec(), BinaryCodec()):
            _BY_NAME[codec.name] = codec
            _BY_CONTENT_TYPE[codec.content_type] = codec
    return _BY_NAME


def codecs() -> Dict[str, Codec]:
    """Registered codecs by name (a copy; the registry itself is immutable)."""
    return dict(_registry())


def default_codec() -> Codec:
    """The codec used when a request names no media type: JSON."""
    return _registry()["json"]


def get_codec(codec: Union[str, Codec, None]) -> Codec:
    """Resolve a codec by registry name (``None`` → the JSON default).

    A :class:`Codec` instance passes through, so internal plumbing can take
    either form.  Unknown names raise
    :class:`~repro.exceptions.ConfigurationError` — this is the config-knob
    resolver; media-type strings go through :func:`codec_for_content_type`.
    """
    if codec is None:
        return default_codec()
    if isinstance(codec, Codec):
        return codec
    resolved = _registry().get(str(codec).lower())
    if resolved is None:
        raise ConfigurationError(
            f"unknown wire codec {codec!r}; registered codecs: {', '.join(sorted(_registry()))}"
        )
    return resolved


def _media_type(value: str) -> str:
    """The bare media type of one ``Content-Type``/``Accept`` item (no params)."""
    return value.partition(";")[0].strip().lower()


def codec_for_content_type(value: Optional[str]) -> Codec:
    """The codec owning a ``Content-Type`` header value (``None``/empty → JSON).

    Parameters after ``;`` (``charset=...``) are ignored.  An unregistered
    media type raises :class:`~repro.exceptions.UnsupportedMediaTypeError`,
    which both HTTP front ends map to a 415 response.
    """
    if value is None or not value.strip():
        return default_codec()
    _registry()
    codec = _BY_CONTENT_TYPE.get(_media_type(value))
    if codec is None:
        raise UnsupportedMediaTypeError(
            f"unsupported content type {value!r}; this server speaks "
            f"{', '.join(sorted(_BY_CONTENT_TYPE))}"
        )
    return codec


def codec_for_accept(value: Optional[str], default: Union[str, Codec, None] = None) -> Codec:
    """The response codec an ``Accept`` header selects.

    ``None``/empty picks ``default`` (the server's configured default
    response codec; JSON when unset), as does a wildcard (``*/*`` or
    ``application/*``).  Items are honored in client order; the first
    registered media type wins.  An ``Accept`` that names only media types
    no codec owns raises :class:`~repro.exceptions.UnsupportedMediaTypeError`
    (→ 415): silently answering in a format the client declared it cannot
    read would be worse than refusing.
    """
    fallback = get_codec(default)
    if value is None or not value.strip():
        return fallback
    _registry()
    for item in value.split(","):
        media = _media_type(item)
        if media in ("*/*", "application/*"):
            return fallback
        codec = _BY_CONTENT_TYPE.get(media)
        if codec is not None:
            return codec
    raise UnsupportedMediaTypeError(
        f"no registered codec satisfies Accept: {value!r}; this server speaks "
        f"{', '.join(sorted(_BY_CONTENT_TYPE))}"
    )


def negotiate(
    headers: Mapping[str, str], default: Union[str, Codec, None] = None
) -> Tuple[Codec, Codec]:
    """``(request codec, response codec)`` for one request's headers.

    ``headers`` must be lower-cased keys (both front ends already normalize).
    The request body is decoded per ``Content-Type`` (absent → JSON), the
    response encoded per ``Accept`` (absent/wildcard → ``default``, itself
    defaulting to JSON).  Unknown media types on either side raise
    :class:`~repro.exceptions.UnsupportedMediaTypeError` (→ 415).
    """
    request_codec = codec_for_content_type(headers.get("content-type"))
    response_codec = codec_for_accept(headers.get("accept"), default=default)
    return request_codec, response_codec


# -- canonical request identity --------------------------------------------------------


def request_digest(request: DiagnosisRequest) -> str:
    """Content digest of a *decoded* request, identical across codecs.

    The digest covers everything that determines the response — schema
    version, model, pinned version, metadata (canonical JSON), and the
    validated arrays' dtype/shape/bytes — so a JSON request and a binary
    request for the same payload hash to the same key and share one response
    cache entry.  Raw-body digests cannot do this: the same arrays have
    different byte representations per codec (and per JSON whitespace).
    """
    inputs, labels = request.arrays()
    hasher = hashlib.blake2b(digest_size=16)
    for piece in (request.schema, request.model, request.version or ""):
        hasher.update(piece.encode("utf-8"))
        hasher.update(b"\x1f")
    metadata = (
        json.dumps(request.metadata, sort_keys=True, separators=(",", ":"))
        if request.metadata is not None
        else "null"
    )
    hasher.update(metadata.encode("utf-8"))
    for array in (inputs, labels):
        contiguous = np.ascontiguousarray(array)
        hasher.update(b"\x1f")
        hasher.update(contiguous.dtype.str.encode("ascii"))
        hasher.update(repr(contiguous.shape).encode("ascii"))
        hasher.update(contiguous.tobytes())
    return hasher.hexdigest()
