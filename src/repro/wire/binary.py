"""``BinaryCodec``: framed binary transport for the ``v1`` documents.

The JSON wire format pays a float→text→float round-trip on every array
element — for a thin request whose payload is a few thousand floats, that
serialization tax dominates the whole HTTP exchange.  This codec frames the
same ``v1`` documents so arrays cross the wire as raw machine bytes:

.. code-block:: text

    offset  size  field
    ------  ----  ------------------------------------------------------
    0       4     magic  b"RPWB"
    4       1     frame version  (currently 1)
    5       1     kind   (1=request, 2=report, 3=error, 4=document)
    6       4     header length N, unsigned little-endian
    10      N     header: compact UTF-8 JSON
                  {"doc": {...non-array fields, incl. "schema": "v1"...},
                   "arrays": [{"name", "dtype", "shape"}, ...]}
    10+N    ...   one record per header descriptor, in order:
                  the array's raw C-contiguous little-endian bytes

Everything *about* the arrays (name, dtype, shape) lives in the JSON header;
everything *inside* them is a single contiguous buffer copy.  Scalars,
metadata, and report fields stay JSON — they are tiny, and reusing the
``v1`` document validation of :mod:`repro.api.schema` means a binary request
is checked by exactly the code that checks a JSON one.

Decoding is defensive end to end: wrong magic, an unknown frame version or
kind, undecodable header JSON, dtypes outside the allow-list, negative or
absurdly-ranked shapes, and any disagreement between the declared byte count
and the bytes actually present raise
:class:`~repro.exceptions.CodecError` — a typed 4xx at the HTTP boundary,
never a 500 and never an allocation sized by an attacker's shape field.
"""

from __future__ import annotations

import json
import math
import struct
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..api.schema import DiagnosisReport, DiagnosisRequest, JsonDict
from ..exceptions import CodecError
from .codec import Codec, ReportLike, _report_document

__all__ = ["BinaryCodec", "MAGIC", "FRAME_VERSION"]

MAGIC = b"RPWB"
FRAME_VERSION = 1

#: Prelude layout: magic, frame version, kind, header length.
_PRELUDE = struct.Struct("<4sBBI")

_KIND_REQUEST = 1
_KIND_REPORT = 2
_KIND_ERROR = 3
_KIND_DOCUMENT = 4
_KIND_NAMES = {
    _KIND_REQUEST: "request",
    _KIND_REPORT: "report",
    _KIND_ERROR: "error",
    _KIND_DOCUMENT: "document",
}

#: Dtypes an array record may declare.  Always little-endian on the wire
#: (the encoder byte-swaps on big-endian hosts); anything outside this set —
#: object, complex, structured — is rejected before any buffer is touched.
_ALLOWED_DTYPES = frozenset(
    np.dtype(name).newbyteorder("<").str if np.dtype(name).itemsize > 1 else np.dtype(name).str
    for name in (
        "bool", "int8", "int16", "int32", "int64",
        "uint8", "uint16", "uint32", "uint64",
        "float16", "float32", "float64",
    )
)

#: Hard caps on header-declared structure, far above any real payload.
_MAX_ARRAYS = 64
_MAX_NDIM = 32


def _wire_array(value: object, name: str) -> np.ndarray:
    """Coerce one array field to its C-contiguous little-endian wire form."""
    array = np.ascontiguousarray(value)
    wire_dtype = array.dtype.newbyteorder("<") if array.dtype.itemsize > 1 else array.dtype
    if wire_dtype.str not in _ALLOWED_DTYPES:
        raise CodecError(
            f"array {name!r} has dtype {array.dtype.str!r}, which the binary codec "
            f"does not transport"
        )
    if array.dtype != wire_dtype:
        array = array.astype(wire_dtype)
    return array


def _encode_frame(kind: int, doc: JsonDict, arrays: Sequence[Tuple[str, np.ndarray]]) -> bytes:
    descriptors: List[JsonDict] = []
    buffers: List[bytes] = []
    for name, array in arrays:
        wire = _wire_array(array, name)
        descriptors.append(
            {"name": name, "dtype": wire.dtype.str, "shape": list(wire.shape)}
        )
        buffers.append(wire.tobytes())
    header = json.dumps(
        {"doc": doc, "arrays": descriptors}, separators=(",", ":")
    ).encode("utf-8")
    prelude = _PRELUDE.pack(MAGIC, FRAME_VERSION, kind, len(header))
    return b"".join([prelude, header, *buffers])


def _decode_frame(
    data: bytes, expected_kind: int
) -> Tuple[JsonDict, Dict[str, np.ndarray]]:
    if len(data) < _PRELUDE.size:
        raise CodecError(
            f"truncated binary frame: {len(data)} byte(s) is smaller than the "
            f"{_PRELUDE.size}-byte prelude"
        )
    magic, version, kind, header_length = _PRELUDE.unpack_from(data)
    if magic != MAGIC:
        raise CodecError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if version != FRAME_VERSION:
        raise CodecError(
            f"unsupported binary frame version {version}; this library speaks "
            f"version {FRAME_VERSION}"
        )
    if kind != expected_kind:
        got = _KIND_NAMES.get(kind, f"unknown kind {kind}")
        raise CodecError(
            f"frame is a {got}, expected a {_KIND_NAMES[expected_kind]}"
        )
    body_offset = _PRELUDE.size + header_length
    if body_offset > len(data):
        raise CodecError(
            f"truncated binary frame: header declares {header_length} byte(s) but "
            f"only {len(data) - _PRELUDE.size} follow the prelude"
        )
    try:
        header = json.loads(data[_PRELUDE.size:body_offset].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CodecError(f"undecodable frame header: {error}") from error
    if not isinstance(header, dict):
        raise CodecError("frame header must be a JSON object")
    doc = header.get("doc")
    descriptors = header.get("arrays")
    if not isinstance(doc, dict) or not isinstance(descriptors, list):
        raise CodecError("frame header must carry a 'doc' object and an 'arrays' list")
    if len(descriptors) > _MAX_ARRAYS:
        raise CodecError(
            f"frame declares {len(descriptors)} arrays (limit {_MAX_ARRAYS})"
        )

    remaining = len(data) - body_offset
    parsed: List[Tuple[str, np.dtype, Tuple[int, ...], int]] = []
    declared_total = 0
    for index, descriptor in enumerate(descriptors):
        if not isinstance(descriptor, dict):
            raise CodecError(f"array descriptor {index} must be an object")
        name = descriptor.get("name")
        dtype_str = descriptor.get("dtype")
        shape = descriptor.get("shape")
        if not isinstance(name, str) or not name:
            raise CodecError(f"array descriptor {index} lacks a name")
        if dtype_str not in _ALLOWED_DTYPES:
            raise CodecError(
                f"array {name!r} declares dtype {dtype_str!r}, which the binary "
                f"codec does not transport"
            )
        if (
            not isinstance(shape, list)
            or len(shape) > _MAX_NDIM
            or not all(isinstance(dim, int) and not isinstance(dim, bool) and dim >= 0
                       for dim in shape)
        ):
            raise CodecError(f"array {name!r} declares an invalid shape {shape!r}")
        dtype = np.dtype(dtype_str)
        nbytes = dtype.itemsize * math.prod(shape)
        declared_total += nbytes
        if declared_total > remaining:
            # Checked inside the loop so a hostile shape like [2**60] is
            # refused before any sum or allocation grows with it.
            raise CodecError(
                f"array {name!r} (shape {tuple(shape)}, dtype {dtype_str}) declares "
                f"more data than the frame carries: {declared_total} byte(s) "
                f"declared, {remaining} present"
            )
        parsed.append((name, dtype, tuple(shape), nbytes))
    if declared_total != remaining:
        raise CodecError(
            f"frame carries {remaining} byte(s) of array data but the header "
            f"declares {declared_total}: truncated or trailing bytes"
        )

    arrays: Dict[str, np.ndarray] = {}
    view = memoryview(data)
    offset = body_offset
    for name, dtype, shape, nbytes in parsed:
        if name in arrays:
            raise CodecError(f"duplicate array {name!r} in frame")
        # .copy() detaches from the request buffer: the array is writable and
        # does not pin the (possibly large) body bytes alive via a view.
        arrays[name] = np.frombuffer(
            view[offset:offset + nbytes], dtype=dtype
        ).reshape(shape).copy()
        offset += nbytes
    return doc, arrays


class BinaryCodec(Codec):
    """The framed binary wire format (see the module docstring for the layout)."""

    name = "binary"
    content_type = "application/x-repro-binary"

    # -- requests -----------------------------------------------------------------

    def encode_request(self, request: DiagnosisRequest) -> bytes:
        doc: JsonDict = {"schema": request.schema, "model": request.model}
        if request.version is not None:
            doc["version"] = request.version
        if request.metadata is not None:
            doc["metadata"] = dict(request.metadata)
        return _encode_frame(
            _KIND_REQUEST,
            doc,
            [("inputs", np.asarray(request.inputs)), ("labels", np.asarray(request.labels))],
        )

    def decode_request(self, data: bytes) -> DiagnosisRequest:
        doc, arrays = _decode_frame(data, _KIND_REQUEST)
        payload: JsonDict = dict(doc)
        overlap = set(payload) & set(arrays)
        if overlap:
            raise CodecError(
                f"frame carries {', '.join(sorted(overlap))} both as doc field(s) "
                f"and as array record(s)"
            )
        payload.update(arrays)
        # The merged document goes through the same v1 validation a JSON body
        # does: unknown fields, missing model/inputs/labels, and schema-version
        # mismatches fail with exactly the JSON path's errors.
        return DiagnosisRequest.from_dict(payload)

    # -- reports ------------------------------------------------------------------

    def encode_report(self, report: ReportLike) -> bytes:
        return _encode_frame(_KIND_REPORT, _report_document(report), [])

    def decode_report(self, data: bytes, cache_state: Optional[str] = None) -> DiagnosisReport:
        doc, arrays = _decode_frame(data, _KIND_REPORT)
        if arrays:
            raise CodecError("report frames carry no array records")
        return DiagnosisReport.from_dict(doc, cache_state=cache_state)

    # -- errors and auxiliary documents -------------------------------------------

    def encode_error(self, payload: JsonDict) -> bytes:
        return _encode_frame(_KIND_ERROR, dict(payload), [])

    def decode_error(self, data: bytes) -> JsonDict:
        doc, _ = _decode_frame(data, _KIND_ERROR)
        return doc

    def encode_document(self, document: JsonDict) -> bytes:
        return _encode_frame(_KIND_DOCUMENT, dict(document), [])

    def decode_document(self, data: bytes) -> JsonDict:
        doc, _ = _decode_frame(data, _KIND_DOCUMENT)
        return doc
