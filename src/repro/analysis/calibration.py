"""Confidence-calibration statistics.

DeepMorph's defect verdicts lean on probe confidences; these utilities
quantify how trustworthy those confidences are (expected calibration error,
reliability bins, Brier score) and are exercised by the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..exceptions import ShapeError
from ..nn.functional import one_hot

__all__ = ["ReliabilityBin", "expected_calibration_error", "reliability_diagram", "brier_score"]


@dataclass(frozen=True)
class ReliabilityBin:
    """One confidence bin of a reliability diagram."""

    lower: float
    upper: float
    count: int
    mean_confidence: float
    accuracy: float


def _validate(probs: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    probs = np.asarray(probs, dtype=np.float64)
    labels = np.asarray(labels)
    if probs.ndim != 2:
        raise ShapeError(f"probabilities must be 2-D (batch, classes), got {probs.shape}")
    if labels.ndim != 1 or labels.shape[0] != probs.shape[0]:
        raise ShapeError(
            f"labels must be 1-D with the same batch size, got {labels.shape} vs {probs.shape}"
        )
    return probs, labels


def reliability_diagram(
    probs: np.ndarray, labels: np.ndarray, num_bins: int = 10
) -> List[ReliabilityBin]:
    """Bin predictions by confidence and report per-bin accuracy."""
    if num_bins <= 0:
        raise ValueError(f"num_bins must be positive, got {num_bins}")
    probs, labels = _validate(probs, labels)
    confidences = probs.max(axis=1)
    predictions = probs.argmax(axis=1)
    correct = predictions == labels

    edges = np.linspace(0.0, 1.0, num_bins + 1)
    bins: List[ReliabilityBin] = []
    for i in range(num_bins):
        lower, upper = edges[i], edges[i + 1]
        if i == num_bins - 1:
            mask = (confidences >= lower) & (confidences <= upper)
        else:
            mask = (confidences >= lower) & (confidences < upper)
        count = int(mask.sum())
        bins.append(ReliabilityBin(
            lower=float(lower),
            upper=float(upper),
            count=count,
            mean_confidence=float(confidences[mask].mean()) if count else 0.0,
            accuracy=float(correct[mask].mean()) if count else 0.0,
        ))
    return bins


def expected_calibration_error(
    probs: np.ndarray, labels: np.ndarray, num_bins: int = 10
) -> float:
    """Expected calibration error: confidence-vs-accuracy gap weighted by bin size."""
    probs, labels = _validate(probs, labels)
    if labels.size == 0:
        return 0.0
    bins = reliability_diagram(probs, labels, num_bins=num_bins)
    total = sum(b.count for b in bins)
    if total == 0:
        return 0.0
    return float(sum(b.count * abs(b.mean_confidence - b.accuracy) for b in bins) / total)


def brier_score(probs: np.ndarray, labels: np.ndarray) -> float:
    """Multi-class Brier score (mean squared error against the one-hot label)."""
    probs, labels = _validate(probs, labels)
    if labels.size == 0:
        return 0.0
    onehot = one_hot(labels.astype(int), probs.shape[1])
    return float(np.mean(np.sum((probs - onehot) ** 2, axis=1)))
