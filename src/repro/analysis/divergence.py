"""Distribution divergences and similarity measures.

These are the numerical primitives DeepMorph uses to compare data-flow
footprints against class execution patterns: probability-vector divergences
(KL, Jensen-Shannon, total variation), entropies, and similarity scores
derived from them.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError

__all__ = [
    "kl_divergence",
    "js_divergence",
    "js_distance",
    "js_similarity",
    "total_variation",
    "cosine_similarity",
    "entropy",
    "normalized_entropy",
    "normalize_distribution",
]

_EPS = 1e-12


def normalize_distribution(p: np.ndarray, axis: int = -1) -> np.ndarray:
    """Clip to non-negative values and renormalize so the axis sums to 1."""
    p = np.clip(np.asarray(p, dtype=np.float64), 0.0, None)
    total = p.sum(axis=axis, keepdims=True)
    uniform = np.full_like(p, 1.0 / p.shape[axis])
    # Vectors whose mass is zero (or so small that dividing by it would lose
    # normalization to rounding) fall back to the uniform distribution.
    with np.errstate(invalid="ignore", divide="ignore"):
        normalized = np.where(total > _EPS, p / np.maximum(total, _EPS), uniform)
    return normalized


def _check_pair(p: np.ndarray, q: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ShapeError(f"distributions must have the same shape, got {p.shape} vs {q.shape}")
    return normalize_distribution(p), normalize_distribution(q)


def kl_divergence(p: np.ndarray, q: np.ndarray, axis: int = -1) -> np.ndarray:
    """Kullback–Leibler divergence ``KL(p || q)`` in nats along ``axis``."""
    p, q = _check_pair(p, q)
    ratio = np.log(np.maximum(p, _EPS)) - np.log(np.maximum(q, _EPS))
    return np.where(p > 0, p * ratio, 0.0).sum(axis=axis)


def js_divergence(p: np.ndarray, q: np.ndarray, axis: int = -1) -> np.ndarray:
    """Jensen–Shannon divergence (symmetric, bounded by ``log 2``)."""
    p, q = _check_pair(p, q)
    m = 0.5 * (p + q)
    return 0.5 * kl_divergence(p, m, axis=axis) + 0.5 * kl_divergence(q, m, axis=axis)


def js_distance(p: np.ndarray, q: np.ndarray, axis: int = -1) -> np.ndarray:
    """Jensen–Shannon distance: the square root of the JS divergence (a metric)."""
    return np.sqrt(np.maximum(js_divergence(p, q, axis=axis), 0.0))


def js_similarity(p: np.ndarray, q: np.ndarray, axis: int = -1) -> np.ndarray:
    """Similarity in ``[0, 1]``: 1 minus the JS divergence normalized by its maximum."""
    return 1.0 - js_divergence(p, q, axis=axis) / np.log(2.0)


def total_variation(p: np.ndarray, q: np.ndarray, axis: int = -1) -> np.ndarray:
    """Total-variation distance ``0.5 * sum |p - q|`` in ``[0, 1]``."""
    p, q = _check_pair(p, q)
    return 0.5 * np.abs(p - q).sum(axis=axis)


def cosine_similarity(a: np.ndarray, b: np.ndarray, axis: int = -1) -> np.ndarray:
    """Cosine similarity between (batches of) vectors."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ShapeError(f"vectors must have the same shape, got {a.shape} vs {b.shape}")
    num = (a * b).sum(axis=axis)
    denom = np.linalg.norm(a, axis=axis) * np.linalg.norm(b, axis=axis)
    return np.where(denom > 0, num / np.maximum(denom, _EPS), 0.0)


def entropy(p: np.ndarray, axis: int = -1) -> np.ndarray:
    """Shannon entropy in nats along ``axis``."""
    p = normalize_distribution(p, axis=axis)
    return -np.where(p > 0, p * np.log(np.maximum(p, _EPS)), 0.0).sum(axis=axis)


def normalized_entropy(p: np.ndarray, axis: int = -1) -> np.ndarray:
    """Entropy divided by ``log(k)`` so the uniform distribution scores 1."""
    p = np.asarray(p, dtype=np.float64)
    k = p.shape[axis]
    if k <= 1:
        return np.zeros(p.sum(axis=axis).shape)
    return entropy(p, axis=axis) / np.log(k)
