"""Analysis utilities: divergences, trajectory statistics, calibration."""

from .calibration import ReliabilityBin, brier_score, expected_calibration_error, reliability_diagram
from .divergence import (
    cosine_similarity,
    entropy,
    js_distance,
    js_divergence,
    js_similarity,
    kl_divergence,
    normalize_distribution,
    normalized_entropy,
    total_variation,
)
from .trajectory import (
    check_trajectory,
    commitment_depth,
    confidence_trajectory,
    divergence_layer,
    entropy_profile,
    layer_stability,
    trajectory_divergence,
    trajectory_similarity,
)

__all__ = [
    "kl_divergence",
    "js_divergence",
    "js_distance",
    "js_similarity",
    "total_variation",
    "cosine_similarity",
    "entropy",
    "normalized_entropy",
    "normalize_distribution",
    "check_trajectory",
    "trajectory_similarity",
    "trajectory_divergence",
    "divergence_layer",
    "commitment_depth",
    "confidence_trajectory",
    "entropy_profile",
    "layer_stability",
    "ReliabilityBin",
    "expected_calibration_error",
    "reliability_diagram",
    "brier_score",
]
