"""Trajectory analysis of layer-wise probe distributions.

A *trajectory* is the ``(num_layers, num_classes)`` matrix of probe output
distributions a single input produces as it flows through the instrumented
model — the quantitative form of the paper's "data flow footprint".  This
module provides the statistics DeepMorph's footprint specifics are built from:
where the belief diverges from the true class, how early it commits to the
predicted class, how sharp it is layer by layer, and how similar two
trajectories are.
"""

from __future__ import annotations


import numpy as np

from ..exceptions import ShapeError
from .divergence import js_divergence, js_similarity, normalized_entropy

__all__ = [
    "check_trajectory",
    "check_trajectory_stack",
    "trajectory_similarity",
    "trajectory_divergence",
    "trajectory_divergence_to_stack",
    "batch_trajectory_divergence",
    "batch_trajectory_similarity",
    "cross_trajectory_divergences",
    "cross_trajectory_layer_divergences",
    "pairwise_trajectory_divergences",
    "pairwise_trajectory_divergences_reference",
    "divergence_layer",
    "batch_divergence_layer",
    "commitment_depth",
    "batch_commitment_depth",
    "confidence_trajectory",
    "entropy_profile",
    "batch_entropy_profile",
    "layer_stability",
    "batch_layer_stability",
]


def check_trajectory(trajectory: np.ndarray) -> np.ndarray:
    """Validate and return a trajectory as a float ``(L, C)`` array."""
    trajectory = np.asarray(trajectory, dtype=np.float64)
    if trajectory.ndim != 2:
        raise ShapeError(
            f"a trajectory must be 2-D (layers, classes), got shape {trajectory.shape}"
        )
    if trajectory.shape[0] == 0 or trajectory.shape[1] == 0:
        raise ShapeError(f"a trajectory must be non-empty, got shape {trajectory.shape}")
    return trajectory


def check_trajectory_stack(stack: np.ndarray) -> np.ndarray:
    """Validate and return a stack of trajectories as a float ``(M, L, C)`` array.

    The batched counterpart of :func:`check_trajectory`: bulk consumers (e.g.
    :meth:`repro.core.FootprintExtractor.from_arrays`) validate a whole
    extraction batch once instead of re-validating each member.  ``M`` may be
    zero; ``L`` and ``C`` must not be.
    """
    stack = np.asarray(stack, dtype=np.float64)
    if stack.ndim != 3:
        raise ShapeError(
            f"a trajectory stack must be 3-D (members, layers, classes), "
            f"got shape {stack.shape}"
        )
    if stack.shape[1] == 0 or stack.shape[2] == 0:
        raise ShapeError(
            f"trajectories must have non-empty layer and class axes, got shape {stack.shape}"
        )
    return stack


def _layer_weights(num_layers: int, emphasis: float) -> np.ndarray:
    """Linearly increasing layer weights; ``emphasis=0`` is uniform.

    Later layers carry more class-discriminative information, so comparisons
    can optionally emphasize them.
    """
    if num_layers == 1:
        return np.ones(1)
    ramp = np.linspace(1.0 - emphasis, 1.0 + emphasis, num_layers)
    return ramp / ramp.sum() * num_layers


def trajectory_similarity(
    a: np.ndarray, b: np.ndarray, late_layer_emphasis: float = 0.5
) -> float:
    """Mean per-layer JS similarity of two trajectories, in ``[0, 1]``."""
    a, b = check_trajectory(a), check_trajectory(b)
    if a.shape != b.shape:
        raise ShapeError(f"trajectories must have the same shape, got {a.shape} vs {b.shape}")
    sims = js_similarity(a, b, axis=1)
    weights = _layer_weights(a.shape[0], late_layer_emphasis)
    return float(np.average(sims, weights=weights))


def trajectory_divergence(
    a: np.ndarray, b: np.ndarray, late_layer_emphasis: float = 0.5
) -> float:
    """Mean per-layer JS divergence of two trajectories (in nats)."""
    a, b = check_trajectory(a), check_trajectory(b)
    if a.shape != b.shape:
        raise ShapeError(f"trajectories must have the same shape, got {a.shape} vs {b.shape}")
    divs = js_divergence(a, b, axis=1)
    weights = _layer_weights(a.shape[0], late_layer_emphasis)
    return float(np.average(divs, weights=weights))


def trajectory_divergence_to_stack(
    trajectory: np.ndarray, stack: np.ndarray, late_layer_emphasis: float = 0.5
) -> np.ndarray:
    """Layer-weighted JS divergence between one trajectory and a stack of them.

    Parameters
    ----------
    trajectory:
        ``(L, C)`` trajectory.
    stack:
        ``(M, L, C)`` stack of trajectories.

    Returns
    -------
    ``(M,)`` divergences.  Vectorized equivalent of calling
    :func:`trajectory_divergence` against each stack member.
    """
    trajectory = check_trajectory(trajectory)
    stack = np.asarray(stack, dtype=np.float64)
    if stack.ndim != 3 or stack.shape[1:] != trajectory.shape:
        raise ShapeError(
            f"stack must have shape (M, {trajectory.shape[0]}, {trajectory.shape[1]}), "
            f"got {stack.shape}"
        )
    divs = js_divergence(stack, np.broadcast_to(trajectory, stack.shape), axis=2)
    weights = _layer_weights(trajectory.shape[0], late_layer_emphasis)
    return np.average(divs, axis=1, weights=weights)


def batch_trajectory_divergence(
    stack: np.ndarray, reference: np.ndarray, late_layer_emphasis: float = 0.5
) -> np.ndarray:
    """Layer-weighted JS divergence of every stack member to one reference.

    Parameters
    ----------
    stack:
        ``(N, L, C)`` stack of trajectories.
    reference:
        ``(L, C)`` trajectory, e.g. a class pattern mean.

    Returns
    -------
    ``(N,)`` divergences — the batch-first mirror of
    :func:`trajectory_divergence_to_stack` (JS is symmetric, so the two agree
    bit for bit).
    """
    return trajectory_divergence_to_stack(
        reference, stack, late_layer_emphasis=late_layer_emphasis
    )


def batch_trajectory_similarity(
    stack: np.ndarray, reference: np.ndarray, late_layer_emphasis: float = 0.5
) -> np.ndarray:
    """Layer-weighted JS similarity (``[0, 1]``) of every stack member to a reference.

    Since the layer weights are normalized, this is exactly one minus the
    normalized divergence — the same identity the batched pattern matcher
    uses, so validation and weighting live in one kernel.
    """
    divergences = batch_trajectory_divergence(
        stack, reference, late_layer_emphasis=late_layer_emphasis
    )
    return 1.0 - divergences / np.log(2.0)


#: Soft cap (in float64 elements) on the broadcast temporaries of the cross
#: kernel; blocks of rows are processed so peak memory stays bounded no matter
#: how many cases are diagnosed at once.
_CROSS_BLOCK_ELEMENTS = 1 << 22


def cross_trajectory_layer_divergences(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-layer JS divergences between two trajectory stacks, shape ``(N, M, L)``.

    The elementwise core of the cross kernel: every member of ``a``
    (``(N, L, C)``) against every member of ``b`` (``(M, L, C)``) in one
    broadcasted computation, before any layer weighting.  Row blocks keep the
    ``(block, M, L, C)`` temporaries under a fixed memory budget.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 3 or b.ndim != 3:
        raise ShapeError(
            f"stacks must be 3-D (members, layers, classes), got {a.shape} vs {b.shape}"
        )
    if a.shape[1:] != b.shape[1:]:
        raise ShapeError(
            f"stacks must agree on (layers, classes), got {a.shape} vs {b.shape}"
        )
    if a.shape[1] == 0 or a.shape[2] == 0:
        raise ShapeError(
            f"trajectories must have non-empty layer and class axes, got shape {a.shape}"
        )
    n, m = a.shape[0], b.shape[0]
    l, c = a.shape[1], a.shape[2]
    out = np.empty((n, m, l), dtype=np.float64)
    block = max(1, _CROSS_BLOCK_ELEMENTS // max(1, m * l * c))
    for start in range(0, n, block):
        sub = a[start:start + block]
        shape = (sub.shape[0], m, l, c)
        out[start:start + block] = js_divergence(
            np.broadcast_to(sub[:, None], shape),
            np.broadcast_to(b[None, :], shape),
            axis=3,
        )
    return out


def cross_trajectory_divergences(
    a: np.ndarray, b: np.ndarray, late_layer_emphasis: float = 0.5
) -> np.ndarray:
    """``(N, M)`` layer-weighted JS divergences between two trajectory stacks.

    Every member of ``a`` (``(N, L, C)``) is compared against every member of
    ``b`` (``(M, L, C)``) in one broadcasted kernel — the batched core behind
    nearest-member analysis and the vectorized pairwise matrix.
    """
    divs = cross_trajectory_layer_divergences(a, b)
    weights = _layer_weights(divs.shape[2], late_layer_emphasis)
    return np.average(divs, axis=2, weights=weights)


def pairwise_trajectory_divergences(
    stack: np.ndarray, late_layer_emphasis: float = 0.5
) -> np.ndarray:
    """Symmetric ``(M, M)`` matrix of layer-weighted JS divergences within a stack.

    Loop-free: one :func:`cross_trajectory_divergences` call of the stack
    against itself.  :func:`pairwise_trajectory_divergences_reference` retains
    the per-row loop as the parity anchor.
    """
    stack = np.asarray(stack, dtype=np.float64)
    if stack.ndim != 3:
        raise ShapeError(f"stack must be 3-D (members, layers, classes), got shape {stack.shape}")
    if stack.shape[0] == 0:
        return np.zeros((0, 0), dtype=np.float64)
    matrix = cross_trajectory_divergences(
        stack, stack, late_layer_emphasis=late_layer_emphasis
    )
    np.fill_diagonal(matrix, 0.0)
    return matrix


def pairwise_trajectory_divergences_reference(
    stack: np.ndarray, late_layer_emphasis: float = 0.5
) -> np.ndarray:
    """Per-row loop implementation of :func:`pairwise_trajectory_divergences`.

    Retained as the independent reference the vectorized kernel is pinned
    against (see ``tests/unit/test_batched_diagnosis.py``).
    """
    stack = np.asarray(stack, dtype=np.float64)
    if stack.ndim != 3:
        raise ShapeError(f"stack must be 3-D (members, layers, classes), got shape {stack.shape}")
    m = stack.shape[0]
    matrix = np.zeros((m, m), dtype=np.float64)
    for i in range(m):
        matrix[i] = trajectory_divergence_to_stack(
            stack[i], stack, late_layer_emphasis=late_layer_emphasis
        )
    np.fill_diagonal(matrix, 0.0)
    return matrix


def divergence_layer(trajectory: np.ndarray, true_class: int) -> int:
    """First layer whose top-1 class differs from ``true_class``.

    Returns ``L`` (one past the last layer) if the trajectory never diverges.
    """
    trajectory = check_trajectory(trajectory)
    if not 0 <= true_class < trajectory.shape[1]:
        raise ShapeError(
            f"true_class {true_class} out of range for {trajectory.shape[1]} classes"
        )
    top1 = trajectory.argmax(axis=1)
    mismatches = np.nonzero(top1 != true_class)[0]
    return int(mismatches[0]) if mismatches.size else int(trajectory.shape[0])


def batch_divergence_layer(stack: np.ndarray, true_classes: np.ndarray) -> np.ndarray:
    """First layer whose top-1 differs from each case's true class, for a whole stack.

    The array-wide counterpart of :func:`divergence_layer`: ``(N,)`` layer
    indices, with ``L`` for cases that never diverge.
    """
    stack = check_trajectory_stack(stack)
    true_classes = np.asarray(true_classes, dtype=np.int64)
    if true_classes.shape != (stack.shape[0],):
        raise ShapeError(
            f"true_classes must be 1-D with one entry per case, got shape "
            f"{true_classes.shape} for {stack.shape[0]} cases"
        )
    if stack.shape[0] and (
        true_classes.min() < 0 or true_classes.max() >= stack.shape[2]
    ):
        raise ShapeError(
            f"true classes must lie in [0, {stack.shape[2]}), got range "
            f"[{true_classes.min()}, {true_classes.max()}]"
        )
    top1 = stack.argmax(axis=2)
    mismatches = top1 != true_classes[:, None]
    return np.where(
        mismatches.any(axis=1), mismatches.argmax(axis=1), stack.shape[1]
    ).astype(np.int64)


def commitment_depth(trajectory: np.ndarray, predicted_class: int) -> float:
    """Fraction of trailing layers whose top-1 prediction already is ``predicted_class``.

    1.0 means the network committed to the (final) prediction from the very
    first layer; values near 0 mean the decision only appeared at the end.
    """
    trajectory = check_trajectory(trajectory)
    if not 0 <= predicted_class < trajectory.shape[1]:
        raise ShapeError(
            f"predicted_class {predicted_class} out of range for {trajectory.shape[1]} classes"
        )
    top1 = trajectory.argmax(axis=1)
    depth = 0
    for layer in range(trajectory.shape[0] - 1, -1, -1):
        if top1[layer] == predicted_class:
            depth += 1
        else:
            break
    return depth / trajectory.shape[0]


def batch_commitment_depth(stack: np.ndarray, predicted_classes: np.ndarray) -> np.ndarray:
    """Trailing-commitment fraction of every stack member, loop-free.

    The array-wide counterpart of :func:`commitment_depth`: the length of the
    trailing run of layers whose top-1 already is the case's predicted class,
    found by scanning the reversed match mask for its first ``False``.
    """
    stack = check_trajectory_stack(stack)
    predicted_classes = np.asarray(predicted_classes, dtype=np.int64)
    if predicted_classes.shape != (stack.shape[0],):
        raise ShapeError(
            f"predicted_classes must be 1-D with one entry per case, got shape "
            f"{predicted_classes.shape} for {stack.shape[0]} cases"
        )
    if stack.shape[0] and (
        predicted_classes.min() < 0 or predicted_classes.max() >= stack.shape[2]
    ):
        raise ShapeError(
            f"predicted classes must lie in [0, {stack.shape[2]}), got range "
            f"[{predicted_classes.min()}, {predicted_classes.max()}]"
        )
    top1 = stack.argmax(axis=2)
    trailing = (top1 == predicted_classes[:, None])[:, ::-1]
    depths = np.where(trailing.all(axis=1), stack.shape[1], trailing.argmin(axis=1))
    return depths / stack.shape[1]


def confidence_trajectory(trajectory: np.ndarray, target_class: int) -> np.ndarray:
    """The probability assigned to ``target_class`` at every layer."""
    trajectory = check_trajectory(trajectory)
    if not 0 <= target_class < trajectory.shape[1]:
        raise ShapeError(
            f"target_class {target_class} out of range for {trajectory.shape[1]} classes"
        )
    return trajectory[:, target_class].copy()


def entropy_profile(trajectory: np.ndarray) -> np.ndarray:
    """Normalized entropy (``[0, 1]``) of the probe distribution at every layer."""
    trajectory = check_trajectory(trajectory)
    return normalized_entropy(trajectory, axis=1)


def layer_stability(trajectory: np.ndarray) -> float:
    """How little the belief changes between consecutive layers, in ``[0, 1]``.

    Computed as one minus the mean consecutive-layer JS divergence (normalized
    by ``log 2``).  A completely static footprint scores 1.
    """
    trajectory = check_trajectory(trajectory)
    if trajectory.shape[0] < 2:
        return 1.0
    consecutive = js_divergence(trajectory[:-1], trajectory[1:], axis=1) / np.log(2.0)
    return float(1.0 - consecutive.mean())


def batch_entropy_profile(stack: np.ndarray) -> np.ndarray:
    """Per-layer normalized entropies of a whole stack, shape ``(N, L)``."""
    stack = check_trajectory_stack(stack)
    return normalized_entropy(stack, axis=2)


def batch_layer_stability(stack: np.ndarray) -> np.ndarray:
    """Consecutive-layer belief stability of every stack member, shape ``(N,)``."""
    stack = check_trajectory_stack(stack)
    if stack.shape[1] < 2:
        return np.ones(stack.shape[0], dtype=np.float64)
    consecutive = js_divergence(stack[:, :-1], stack[:, 1:], axis=2) / np.log(2.0)
    return 1.0 - consecutive.mean(axis=1)
