"""Experiment harness: Table I reproduction, presets, and weight calibration."""

from .calibrate import CalibrationExample, calibrate, collect_examples, describe_weights, fit_weights
from .config import MODEL_DATASETS, PRESETS, ExperimentSettings, model_hyperparameters, preset
from .runner import CellResult, make_dataset, make_model, run_cell, train_model
from .table1 import PAPER_TABLE1, Table1Result, Table1Row, format_table1, run_table1

__all__ = [
    "ExperimentSettings",
    "MODEL_DATASETS",
    "PRESETS",
    "preset",
    "model_hyperparameters",
    "CellResult",
    "run_cell",
    "make_dataset",
    "make_model",
    "train_model",
    "Table1Row",
    "Table1Result",
    "run_table1",
    "format_table1",
    "PAPER_TABLE1",
    "CalibrationExample",
    "collect_examples",
    "fit_weights",
    "calibrate",
    "describe_weights",
]
