"""Reproduction of the paper's Table I.

The paper's only results table reports, for every (dataset, model) pair and
every injected defect, the ratio DeepMorph assigns to ITD / UTD / SD.  The
claim is diagonal dominance: the injected defect always receives the largest
ratio.  :func:`run_table1` regenerates the table (on the synthetic dataset
stand-ins and scaled model variants documented in DESIGN.md) and
:func:`format_table1` renders it in the paper's layout.
"""

from __future__ import annotations

import multiprocessing
import sys
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core import DefectClassifierConfig
from ..defects import DefectType
from ..exceptions import ExperimentError
from .config import MODEL_DATASETS, ExperimentSettings
from .runner import CellResult, run_cell

__all__ = ["Table1Row", "Table1Result", "run_table1", "format_table1", "PAPER_TABLE1"]

#: The paper's reported Table I, keyed by (model, injected defect) with the
#: ratios in ITD/UTD/SD order.  Used by EXPERIMENTS.md and the benchmark
#: comparisons (shape only; absolute values depend on the authors' testbed).
PAPER_TABLE1: Dict[tuple, tuple] = {
    ("lenet", "itd"): (0.763, 0.011, 0.226),
    ("lenet", "utd"): (0.152, 0.745, 0.103),
    ("lenet", "sd"): (0.280, 0.091, 0.629),
    ("alexnet", "itd"): (0.822, 0.023, 0.155),
    ("alexnet", "utd"): (0.145, 0.787, 0.068),
    ("alexnet", "sd"): (0.238, 0.174, 0.588),
    ("resnet", "itd"): (0.694, 0.234, 0.072),
    ("resnet", "utd"): (0.138, 0.577, 0.285),
    ("resnet", "sd"): (0.433, 0.086, 0.481),
    ("densenet", "itd"): (0.770, 0.191, 0.039),
    ("densenet", "utd"): (0.185, 0.643, 0.172),
    ("densenet", "sd"): (0.452, 0.013, 0.535),
}


@dataclass(frozen=True)
class Table1Row:
    """One row of the reproduced Table I (one injected defect on one model)."""

    model: str
    dataset: str
    injected_defect: DefectType
    ratios: Dict[DefectType, float]
    dominant_defect: DefectType
    test_accuracy: float
    num_faulty_cases: int

    @property
    def diagonal_correct(self) -> bool:
        """Whether the injected defect received the largest ratio."""
        return self.dominant_defect == self.injected_defect

    def paper_ratios(self) -> Optional[tuple]:
        """The paper's reported ratios for this cell group, if available."""
        return PAPER_TABLE1.get((self.model, self.injected_defect.value))

    def as_dict(self) -> Dict:
        return {
            "model": self.model,
            "dataset": self.dataset,
            "injected_defect": self.injected_defect.value,
            "ratios": {k.value: v for k, v in self.ratios.items()},
            "dominant_defect": self.dominant_defect.value,
            "diagonal_correct": self.diagonal_correct,
            "test_accuracy": self.test_accuracy,
            "num_faulty_cases": self.num_faulty_cases,
            "paper_ratios": self.paper_ratios(),
        }


@dataclass
class Table1Result:
    """The full reproduced Table I."""

    rows: List[Table1Row] = field(default_factory=list)
    cells: List[CellResult] = field(default_factory=list)

    def row(self, model: str, defect: "DefectType | str") -> Table1Row:
        """Look up one row."""
        if isinstance(defect, str):
            defect = DefectType.from_string(defect)
        for row in self.rows:
            if row.model == model and row.injected_defect == defect:
                return row
        raise KeyError(f"no row for model={model!r}, defect={defect}")

    @property
    def diagonal_accuracy(self) -> float:
        """Fraction of rows where the injected defect received the largest ratio."""
        if not self.rows:
            return 0.0
        return float(np.mean([row.diagonal_correct for row in self.rows]))

    def as_dict(self) -> Dict:
        return {
            "rows": [row.as_dict() for row in self.rows],
            "diagonal_accuracy": self.diagonal_accuracy,
        }


#: One planned Table-1 cell: (model name, retargeted settings, defect).
_CellSpec = Tuple[str, ExperimentSettings, DefectType]


def _run_cell_job(
    payload: Tuple[ExperimentSettings, DefectType, Optional[DefectClassifierConfig]]
) -> CellResult:
    """Worker-process entry point for one Table-1 cell.

    Module-level so the multiprocessing pool can pickle it under every start
    method.  Each cell is fully self-seeded — ``run_cell`` derives every
    stochastic component's seed from the cell's own ``settings.seed`` via
    ``derive_seed`` — so the result is bitwise independent of which process
    (or how many siblings) computed it.
    """
    settings, defect, classifier_config = payload
    return run_cell(defect, settings, classifier_config=classifier_config)


def _iter_cells(
    specs: Sequence[_CellSpec],
    classifier_config: Optional[DefectClassifierConfig],
    jobs: int,
) -> Iterator[CellResult]:
    """Yield cell results in grid order, serially or via a process pool."""
    if jobs == 1 or len(specs) <= 1:
        for _, model_settings, defect in specs:
            yield run_cell(defect, model_settings, classifier_config=classifier_config)
        return
    payloads = [
        (model_settings, defect, classifier_config)
        for _, model_settings, defect in specs
    ]
    # Fork shares the parent's imported package with zero per-worker startup
    # cost (and works regardless of how __main__ was launched), but is only
    # used on Linux: macOS's Accelerate/Objective-C runtime is not fork-safe
    # (the reason CPython switched its darwin default to spawn), so everywhere
    # else the workers spawn and re-import — the worker entry point is
    # module-level precisely so both methods can pickle it.
    use_fork = (
        sys.platform.startswith("linux")
        and "fork" in multiprocessing.get_all_start_methods()
    )
    context = multiprocessing.get_context("fork" if use_fork else "spawn")
    with context.Pool(processes=min(jobs, len(payloads))) as pool:
        # imap preserves grid order, so rows, cells, and progress lines are
        # identical to a serial run no matter which worker finishes first.
        yield from pool.imap(_run_cell_job, payloads)


def run_table1(
    models: Optional[Sequence[str]] = None,
    defects: Optional[Sequence["DefectType | str"]] = None,
    settings: Optional[ExperimentSettings] = None,
    classifier_config: Optional[DefectClassifierConfig] = None,
    progress: Optional[callable] = None,
    jobs: int = 1,
) -> Table1Result:
    """Run the Table I experiment grid.

    Parameters
    ----------
    models:
        Which models to run (default: all four of the paper's models).
    defects:
        Which defect types to inject (default: ITD, UTD, SD).
    settings:
        Base experiment settings; the dataset is retargeted per model
        automatically (LeNet/AlexNet → synthetic MNIST, ResNet/DenseNet →
        synthetic CIFAR), matching the paper's pairing.
    progress:
        Optional callable invoked with a status line after each cell.
    jobs:
        Number of worker processes the independent cells are dispatched to.
        ``1`` (the default) runs the grid serially in-process.  Every cell
        derives its seeds from its own settings, so any ``jobs`` value
        produces bitwise-identical ratios in identical row order.
    """
    jobs = int(jobs)
    if jobs < 1:
        raise ExperimentError(
            f"jobs must be >= 1 (number of worker processes for the experiment "
            f"grid), got {jobs}"
        )
    models = list(models) if models is not None else list(MODEL_DATASETS)
    unknown = [m for m in models if m not in MODEL_DATASETS]
    if unknown:
        raise ExperimentError(f"unknown model(s) {unknown}; available: {sorted(MODEL_DATASETS)}")
    defect_list = [
        DefectType.from_string(d) if isinstance(d, str) else d
        for d in (defects if defects is not None else DefectType.injectable())
    ]
    settings = settings or ExperimentSettings()

    specs: List[_CellSpec] = [
        (model, settings.for_model(model), defect)
        for model in models
        for defect in defect_list
    ]
    result = Table1Result()
    for (model, model_settings, defect), cell in zip(
        specs, _iter_cells(specs, classifier_config, jobs)
    ):
        if cell.report is None:
            raise ExperimentError(
                f"cell ({model}, {defect.value}) produced no faulty cases to diagnose; "
                "increase the injection strength or the production set size"
            )
        row = Table1Row(
            model=model,
            dataset=model_settings.dataset,
            injected_defect=defect,
            ratios=dict(cell.report.ratios),
            dominant_defect=cell.report.dominant_defect,
            test_accuracy=cell.test_accuracy,
            num_faulty_cases=cell.num_faulty_cases,
        )
        result.rows.append(row)
        result.cells.append(cell)
        if progress is not None:
            flag = "ok" if row.diagonal_correct else "MISS"
            progress(
                f"[{flag}] {model:9s} {defect.value.upper():3s} -> "
                + "  ".join(
                    f"{d.value.upper()}={row.ratios[d]:.3f}"
                    for d in (DefectType.ITD, DefectType.UTD, DefectType.SD)
                )
                + f"  (acc={row.test_accuracy:.3f}, faulty={row.num_faulty_cases})"
            )
    return result


def format_table1(result: Table1Result, include_paper: bool = True) -> str:
    """Render the reproduced table in the paper's row/column layout."""
    defect_order = (DefectType.ITD, DefectType.UTD, DefectType.SD)
    lines = []
    header = f"{'model':10s} {'dataset':8s} {'injected':9s} " + " ".join(
        f"{d.value.upper():>7s}" for d in defect_order
    ) + "   dominant  match"
    lines.append(header)
    lines.append("-" * len(header))
    for row in result.rows:
        ratios = " ".join(f"{row.ratios[d]:7.3f}" for d in defect_order)
        mark = "yes" if row.diagonal_correct else "NO"
        lines.append(
            f"{row.model:10s} {row.dataset:8s} {row.injected_defect.value.upper():9s} "
            f"{ratios}   {row.dominant_defect.value.upper():8s} {mark}"
        )
        if include_paper and row.paper_ratios() is not None:
            paper = " ".join(f"{v:7.3f}" for v in row.paper_ratios())
            lines.append(f"{'':10s} {'(paper)':8s} {'':9s} {paper}")
    lines.append("-" * len(header))
    lines.append(f"diagonal dominance: {result.diagonal_accuracy:.0%} of rows")
    return "\n".join(lines)
