"""Experiment configuration.

One :class:`ExperimentSettings` object describes everything needed to run one
defect-injection experiment cell: dataset, model, training budget, probe
budget, and the defect-injection parameters.  Presets (`paper`, `default`,
`quick`, `smoke`) trade fidelity against CPU time; the benchmark harness uses
`default`, the unit tests use `smoke`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from ..exceptions import ConfigurationError

__all__ = ["ExperimentSettings", "MODEL_DATASETS", "PRESETS", "preset", "model_hyperparameters"]

#: The dataset each model family is evaluated on in the paper's Table I.
MODEL_DATASETS: Dict[str, str] = {
    "lenet": "mnist",
    "alexnet": "mnist",
    "resnet": "cifar",
    "densenet": "cifar",
}


@dataclass(frozen=True)
class ExperimentSettings:
    """All knobs of one defect-injection experiment.

    Attributes
    ----------
    dataset:
        ``"mnist"`` (synthetic MNIST stand-in) or ``"cifar"`` (synthetic
        CIFAR-10 stand-in).
    model:
        Model-zoo architecture name.
    train_per_class, test_per_class:
        Number of training / production examples per class.
    epochs, batch_size, learning_rate:
        Training budget of the target model.
    probe_epochs:
        Training budget of the auxiliary softmax probes.
    seed:
        Master seed; every stochastic component derives its own seed from it.
    itd_affected_classes, itd_keep_fraction:
        ITD injection: how many classes are starved and what fraction of their
        data survives.
    utd_fraction:
        UTD injection: fraction of the source class that is mislabeled.
    sd_keep_fraction, sd_narrow_factor:
        SD injection: fraction of conv stages/blocks kept and width multiplier.
    model_scale:
        ``"scaled"`` (CPU-sized architectures, the default) or ``"paper"``
        (ResNet-34 / DenseNet-40 sized variants — slow on CPU).
    """

    dataset: str = "mnist"
    model: str = "lenet"
    train_per_class: int = 100
    test_per_class: int = 40
    epochs: int = 20
    batch_size: int = 32
    learning_rate: float = 0.01
    probe_epochs: int = 12
    seed: int = 2021
    itd_affected_classes: int = 3
    itd_keep_fraction: float = 0.08
    utd_fraction: float = 0.55
    sd_keep_fraction: float = 0.30
    sd_narrow_factor: float = 0.40
    model_scale: str = "scaled"

    def __post_init__(self):
        if self.dataset not in ("mnist", "cifar"):
            raise ConfigurationError(f"dataset must be 'mnist' or 'cifar', got {self.dataset!r}")
        if self.model not in MODEL_DATASETS:
            raise ConfigurationError(
                f"model must be one of {sorted(MODEL_DATASETS)}, got {self.model!r}"
            )
        if self.train_per_class <= 0 or self.test_per_class <= 0:
            raise ConfigurationError("per-class example counts must be positive")
        if self.epochs <= 0 or self.batch_size <= 0 or self.probe_epochs <= 0:
            raise ConfigurationError("training budgets must be positive")
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if self.model_scale not in ("scaled", "paper"):
            raise ConfigurationError(
                f"model_scale must be 'scaled' or 'paper', got {self.model_scale!r}"
            )

    def for_model(self, model: str) -> "ExperimentSettings":
        """The same settings retargeted at ``model`` (and its paper dataset)."""
        return replace(self, model=model, dataset=MODEL_DATASETS[model])

    def with_seed(self, seed: int) -> "ExperimentSettings":
        """The same settings with a different master seed."""
        return replace(self, seed=int(seed))


def model_hyperparameters(model: str, scale: str = "scaled") -> Dict:
    """Architecture hyperparameters used by the experiment harness.

    ``scale="scaled"`` returns CPU-sized variants that preserve each family's
    structure; ``scale="paper"`` returns the layer counts reported in the
    paper (ResNet-34 block layout, DenseNet-40 unit layout) — far slower on
    CPU but structurally faithful.
    """
    scaled = {
        "lenet": {"conv_channels": [6, 16], "dense_units": [120, 84], "kernel_size": 5},
        "alexnet": {
            "conv_channels": [16, 32, 48, 48, 32],
            "dense_units": [96, 64],
            "dropout": 0.2,
            "use_batchnorm": True,
        },
        "resnet": {"base_channels": 12, "block_counts": [2, 2, 2]},
        "densenet": {"growth_rate": 6, "units_per_block": [2, 2, 2], "compression": 0.5},
    }
    paper = {
        "lenet": scaled["lenet"],
        "alexnet": scaled["alexnet"],
        "resnet": {"base_channels": 16, "block_counts": [3, 4, 6, 3]},
        "densenet": {"growth_rate": 12, "units_per_block": [12, 12, 12], "compression": 0.5},
    }
    table = scaled if scale == "scaled" else paper
    if model not in table:
        raise ConfigurationError(f"unknown model {model!r}; available: {sorted(table)}")
    return dict(table[model])


PRESETS: Dict[str, ExperimentSettings] = {
    # Full benchmark preset used by the Table I reproduction.
    "default": ExperimentSettings(),
    # Faster preset for iterating on the harness.
    "quick": ExperimentSettings(train_per_class=60, test_per_class=30, epochs=12, probe_epochs=8),
    # Minimal preset used by the integration tests (seconds, not minutes).
    "smoke": ExperimentSettings(
        train_per_class=12, test_per_class=8, epochs=3, probe_epochs=3, batch_size=16
    ),
    # Paper-scale architectures (slow; provided for completeness).
    "paper": ExperimentSettings(
        train_per_class=120, test_per_class=60, epochs=24, model_scale="paper"
    ),
}


def preset(name: str) -> ExperimentSettings:
    """Look up a preset by name."""
    if name not in PRESETS:
        raise ConfigurationError(f"unknown preset {name!r}; available: {sorted(PRESETS)}")
    return PRESETS[name]
