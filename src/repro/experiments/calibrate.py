"""Calibration of the defect-classifier weights.

DeepMorph's per-case decision rule is a linear scoring function over the
footprint specifics and the model-level context signals (see
:mod:`repro.core.classifier`).  This module fits those weights from labeled
defect-injection runs: every faulty case of a run whose injected defect is
known becomes one training example (feature vector → injected defect).

The fit is a multinomial logistic regression trained with the library's own
substrate (a :class:`~repro.nn.layers.Dense` layer and Adam).  The resulting
weights ship as the defaults of
:class:`~repro.core.classifier.DefectClassifierConfig`; re-run the calibration
with different seeds or scenarios to reproduce or revise them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.classifier import (
    FEATURE_NAMES,
    DefectClassifierConfig,
    DiagnosisContext,
    build_feature_vector,
)
from ..core.specifics import FootprintSpecifics
from ..defects import DefectType
from ..exceptions import ExperimentError
from ..nn.layers import Dense
from ..nn.losses import SoftmaxCrossEntropy
from ..optim import Adam
from ..rng import RngLike, ensure_rng
from .config import MODEL_DATASETS, ExperimentSettings
from .runner import run_cell

__all__ = ["CalibrationExample", "collect_examples", "fit_weights", "calibrate"]

_ORDER = (DefectType.ITD, DefectType.UTD, DefectType.SD)


@dataclass(frozen=True)
class CalibrationExample:
    """One labeled training example for the weight fit."""

    features: np.ndarray
    label: DefectType
    model: str

    @property
    def label_index(self) -> int:
        return _ORDER.index(self.label)


def collect_examples(
    models: Sequence[str] = ("lenet", "alexnet"),
    defects: Sequence[DefectType] = (DefectType.ITD, DefectType.UTD, DefectType.SD),
    settings: Optional[ExperimentSettings] = None,
    seeds: Sequence[int] = (11,),
    progress: Optional[callable] = None,
) -> List[CalibrationExample]:
    """Run labeled defect-injection cells and harvest per-case feature vectors."""
    settings = settings or ExperimentSettings()
    examples: List[CalibrationExample] = []
    for seed in seeds:
        for model in models:
            if model not in MODEL_DATASETS:
                raise ExperimentError(f"unknown model {model!r}")
            model_settings = settings.for_model(model).with_seed(seed)
            for defect in defects:
                cell = run_cell(defect, model_settings, collect_specifics=True)
                specifics: List[FootprintSpecifics] = cell.extras.get("specifics", [])
                context: DiagnosisContext = cell.extras.get("context") or DiagnosisContext()
                for spec in specifics:
                    examples.append(CalibrationExample(
                        features=build_feature_vector(spec, context),
                        label=defect,
                        model=model,
                    ))
                if progress is not None:
                    progress(
                        f"collected {len(specifics):4d} cases from "
                        f"{model}/{defect.value} (seed {seed}, acc {cell.test_accuracy:.3f})"
                    )
    if not examples:
        raise ExperimentError("calibration collected no examples")
    return examples


def fit_weights(
    examples: Sequence[CalibrationExample],
    epochs: int = 300,
    learning_rate: float = 0.05,
    weight_decay: float = 4e-3,
    temperature: float = 0.35,
    rng: RngLike = 0,
) -> Tuple[DefectClassifierConfig, Dict[str, float]]:
    """Fit the linear scoring weights with multinomial logistic regression.

    Returns the fitted config and a metrics dict (training accuracy, per-class
    accuracy).
    """
    if not examples:
        raise ExperimentError("cannot fit weights on zero examples")
    features = np.stack([ex.features for ex in examples])
    labels = np.array([ex.label_index for ex in examples], dtype=np.int64)

    generator = ensure_rng(rng)
    dense = Dense(features.shape[1], len(_ORDER), use_bias=False, rng=generator, name="calibration")
    loss = SoftmaxCrossEntropy()
    optimizer = Adam(dense.parameters(), lr=learning_rate, weight_decay=weight_decay)

    # Class weights counteract imbalance between scenarios of different sizes.
    counts = np.bincount(labels, minlength=len(_ORDER)).astype(np.float64)
    class_weights = counts.sum() / np.maximum(counts, 1.0) / len(_ORDER)
    sample_weights = class_weights[labels]
    sample_weights /= sample_weights.mean()

    for _ in range(int(epochs)):
        dense.zero_grad()
        logits = dense.forward(features)
        loss.forward(logits, labels)
        grad = loss.backward() * sample_weights[:, None]
        dense.backward(grad)
        optimizer.step()

    logits = dense.forward(features)
    predictions = logits.argmax(axis=1)
    metrics = {"train_accuracy": float(np.mean(predictions == labels))}
    for i, defect in enumerate(_ORDER):
        mask = labels == i
        metrics[f"accuracy_{defect.value}"] = (
            float(np.mean(predictions[mask] == i)) if mask.any() else 0.0
        )

    weight_matrix = dense.weight.data.T  # (3, num_features)
    config = DefectClassifierConfig.from_weight_matrix(weight_matrix, temperature=temperature)
    return config, metrics


def calibrate(
    models: Sequence[str] = ("lenet", "alexnet"),
    settings: Optional[ExperimentSettings] = None,
    seeds: Sequence[int] = (11,),
    progress: Optional[callable] = None,
    **fit_kwargs,
) -> Tuple[DefectClassifierConfig, Dict[str, float]]:
    """Collect examples and fit the classifier weights in one call."""
    examples = collect_examples(
        models=models, settings=settings, seeds=seeds, progress=progress
    )
    return fit_weights(examples, **fit_kwargs)


def describe_weights(config: DefectClassifierConfig) -> str:
    """Human-readable weight table (feature per row, one column per defect)."""
    matrix = config.weight_matrix()
    lines = [f"{'feature':26s} {'ITD':>8s} {'UTD':>8s} {'SD':>8s}"]
    for i, name in enumerate(FEATURE_NAMES):
        lines.append(
            f"{name:26s} {matrix[0, i]:8.3f} {matrix[1, i]:8.3f} {matrix[2, i]:8.3f}"
        )
    return "\n".join(lines)
