"""Defect-injection experiment runner.

One *cell* of the paper's Table I is: pick a (dataset, model) pair, inject one
defect type, train the model, hand the model + training data + faulty cases to
DeepMorph, and record the defect ratios it reports.  :func:`run_cell` executes
exactly that, deterministically from an :class:`ExperimentSettings` and the
defect type.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


from ..api.config import DiagnoserConfig
from ..core import DefectClassifierConfig, DefectReport, find_faulty_cases
from ..data.dataset import ArrayDataset
from ..data.synthetic import SyntheticCIFAR, SyntheticImageClassification, SyntheticMNIST
from ..defects import (
    DefectType,
    InsufficientTrainingData,
    StructureDefect,
    UnreliableTrainingData,
)
from ..exceptions import ExperimentError
from ..models import build_model
from ..models.base import ClassifierModel
from ..optim import Adam
from ..rng import derive_seed, ensure_rng
from ..training import Trainer, evaluate
from .config import ExperimentSettings, model_hyperparameters

__all__ = ["CellResult", "make_dataset", "make_model", "train_model", "run_cell"]


@dataclass
class CellResult:
    """Everything produced by one defect-injection experiment cell.

    Attributes
    ----------
    settings:
        The experiment settings the cell ran with.
    injected_defect:
        The defect type that was injected (``NONE`` for clean baselines).
    report:
        DeepMorph's diagnosis (``None`` for clean baselines with no faulty cases).
    clean_accuracy:
        Test accuracy a defect-free model reaches under the same settings
        (only populated when the runner computed it).
    test_accuracy:
        Test accuracy of the (defective) model under diagnosis.
    num_faulty_cases:
        Number of misclassified production cases handed to DeepMorph.
    injection_description:
        One-line description of what was injected.
    duration_seconds:
        Wall-clock duration of the cell.
    """

    settings: ExperimentSettings
    injected_defect: DefectType
    report: Optional[DefectReport]
    test_accuracy: float
    num_faulty_cases: int
    injection_description: str = ""
    clean_accuracy: Optional[float] = None
    duration_seconds: float = 0.0
    extras: Dict = field(default_factory=dict)

    def ratios(self) -> Dict[str, float]:
        """The diagnosis ratios keyed by defect name (empty if no report)."""
        if self.report is None:
            return {}
        return {defect.value: ratio for defect, ratio in self.report.ratios.items()}

    def diagonal_correct(self) -> Optional[bool]:
        """Whether the dominant reported defect matches the injected defect."""
        if self.report is None or self.injected_defect == DefectType.NONE:
            return None
        return self.report.dominant_defect == self.injected_defect

    def as_dict(self) -> Dict:
        return {
            "model": self.settings.model,
            "dataset": self.settings.dataset,
            "injected_defect": self.injected_defect.value,
            "test_accuracy": self.test_accuracy,
            "clean_accuracy": self.clean_accuracy,
            "num_faulty_cases": self.num_faulty_cases,
            "ratios": self.ratios(),
            "dominant_defect": self.report.dominant_defect.value if self.report else None,
            "diagonal_correct": self.diagonal_correct(),
            "injection_description": self.injection_description,
            "duration_seconds": self.duration_seconds,
        }


def make_dataset(settings: ExperimentSettings) -> Tuple[SyntheticImageClassification, ArrayDataset, ArrayDataset]:
    """Build the synthetic dataset generator and its train/production splits."""
    data_seed = derive_seed(settings.seed, "dataset", settings.dataset)
    if settings.dataset == "mnist":
        generator = SyntheticMNIST(seed=derive_seed(settings.seed, "prototypes", "mnist"))
    else:
        generator = SyntheticCIFAR(seed=derive_seed(settings.seed, "prototypes", "cifar"))
    train, test = generator.splits(
        settings.train_per_class,
        settings.test_per_class,
        rng=data_seed,
        name=settings.dataset,
    )
    return generator, train, test


def make_model(settings: ExperimentSettings) -> ClassifierModel:
    """Build the (clean) target model described by ``settings``."""
    _, train, _ = _dataset_shapes(settings)
    return build_model(
        settings.model,
        input_shape=train,
        num_classes=10,
        rng=derive_seed(settings.seed, "model", settings.model),
        **model_hyperparameters(settings.model, settings.model_scale),
    )


def _dataset_shapes(settings: ExperimentSettings) -> Tuple[str, Tuple[int, int, int], int]:
    if settings.dataset == "mnist":
        return "mnist", (1, 14, 14), 10
    return "cifar", (3, 16, 16), 10


def train_model(
    model: ClassifierModel,
    train_data: ArrayDataset,
    settings: ExperimentSettings,
) -> float:
    """Train ``model`` on ``train_data`` with the settings' budget; returns final train accuracy."""
    optimizer = Adam(model.parameters(), lr=settings.learning_rate)
    trainer = Trainer(
        model, optimizer, rng=derive_seed(settings.seed, "trainer", settings.model)
    )
    history = trainer.fit(
        train_data, epochs=settings.epochs, batch_size=settings.batch_size
    )
    final = history.final
    return float(final.train_accuracy) if final is not None else 0.0


def _inject(
    defect: DefectType,
    settings: ExperimentSettings,
    model: ClassifierModel,
    train_data: ArrayDataset,
) -> Tuple[ClassifierModel, ArrayDataset, str]:
    """Apply the requested defect; returns (model, training data, description)."""
    rng = ensure_rng(derive_seed(settings.seed, "inject", defect.value, settings.model))
    if defect == DefectType.NONE:
        return model, train_data, "no injected defect"
    if defect == DefectType.ITD:
        injector = InsufficientTrainingData(
            num_affected=settings.itd_affected_classes,
            keep_fraction=settings.itd_keep_fraction,
        )
        injected, report = injector.apply(train_data, rng=rng)
        return model, injected, report.description
    if defect == DefectType.UTD:
        injector = UnreliableTrainingData(fraction=settings.utd_fraction)
        injected, report = injector.apply(train_data, rng=rng)
        return model, injected, report.description
    if defect == DefectType.SD:
        injector = StructureDefect(
            keep_fraction=settings.sd_keep_fraction,
            narrow_factor=settings.sd_narrow_factor,
        )
        degraded, report = injector.apply(
            model, rng=derive_seed(settings.seed, "sd-model", settings.model)
        )
        return degraded, train_data, report.description
    raise ExperimentError(f"cannot inject defect type {defect!r}")


def run_cell(
    defect: "DefectType | str",
    settings: Optional[ExperimentSettings] = None,
    classifier_config: Optional[DefectClassifierConfig] = None,
    collect_specifics: bool = False,
) -> CellResult:
    """Run one Table I cell: inject ``defect``, train, and diagnose.

    Parameters
    ----------
    defect:
        The defect type to inject (``"itd"``, ``"utd"``, ``"sd"``, or ``"none"``).
    settings:
        Experiment settings (defaults to the ``default`` preset values).
    classifier_config:
        Optional override of the defect-classifier weights (used by ablations
        and by weight calibration).
    collect_specifics:
        When ``True``, the per-case footprint specifics are attached to
        ``CellResult.extras["specifics"]`` (used by the calibration tool).
    """
    if isinstance(defect, str):
        defect = DefectType.from_string(defect)
    settings = settings or ExperimentSettings()
    started = time.perf_counter()

    _, train_data, test_data = make_dataset(settings)
    model = make_model(settings)
    model, effective_train, description = _inject(defect, settings, model, train_data)

    train_model(model, effective_train, settings)
    _, test_accuracy = evaluate(model, test_data)

    faulty_inputs, faulty_labels, _ = find_faulty_cases(model, test_data)
    num_faulty = int(faulty_labels.shape[0])

    report: Optional[DefectReport] = None
    extras: Dict = {}
    if num_faulty > 0:
        # The pipeline knobs come from the consolidated repro.api config, so
        # an experiment cell and a served artifact are built identically.
        morph = DiagnoserConfig(
            probe_epochs=settings.probe_epochs,
            classifier_config=classifier_config,
        ).build_deepmorph(
            rng=derive_seed(settings.seed, "deepmorph", settings.model, defect.value)
        )
        morph.fit(model, effective_train)
        report = morph.diagnose(
            faulty_inputs,
            faulty_labels,
            metadata={
                "model": settings.model,
                "dataset": settings.dataset,
                "injected_defect": defect.value,
            },
        )
        if collect_specifics:
            footprints = [
                fp for fp in morph.extract_footprints(faulty_inputs, faulty_labels)
                if fp.is_misclassified
            ]
            extras["specifics"] = morph.compute_specifics(footprints)
            extras["context"] = report.context

    return CellResult(
        settings=settings,
        injected_defect=defect,
        report=report,
        test_accuracy=float(test_accuracy),
        num_faulty_cases=num_faulty,
        injection_description=description,
        duration_seconds=time.perf_counter() - started,
        extras=extras,
    )
