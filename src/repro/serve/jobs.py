"""Job queue and worker pool for asynchronous diagnosis.

A diagnosis of a large production set can take seconds; HTTP clients should
not have to hold a connection open for that long.  The worker pool accepts
jobs (arbitrary callables returning a JSON-friendly result), runs them on a
fixed set of daemon threads, and tracks each job's lifecycle in a bounded
in-memory store so clients can poll ``GET /jobs/<id>``.

Concurrency note: the worker threads never touch a model directly — diagnosis
jobs funnel their extraction through the single-threaded
:class:`~repro.serve.batching.BatchingEngine`, which is what makes concurrent
jobs over the same model both safe and batched.
"""

from __future__ import annotations

import queue
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..exceptions import ServeError

__all__ = ["JobStatus", "Job", "JobStore", "WorkerPool"]


class JobStatus:
    """Lifecycle states of a job (plain strings so payloads stay JSON-native)."""

    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"

    FINISHED = (SUCCEEDED, FAILED)


@dataclass
class Job:
    """One tracked unit of asynchronous work.

    Two clocks per lifecycle event: the wall-clock ``*_at`` fields are for
    display ("when did this run"), the ``*_monotonic`` fields are what all
    duration math uses — a wall-clock jump (NTP step, manual adjustment)
    must never corrupt a reported queue or run time.
    """

    job_id: str
    kind: str
    status: str = JobStatus.PENDING
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    submitted_monotonic: float = field(default_factory=time.monotonic)
    started_monotonic: Optional[float] = None
    finished_monotonic: Optional[float] = None
    result: Optional[Dict] = None
    error: Optional[str] = None
    details: Dict = field(default_factory=dict)

    @property
    def is_finished(self) -> bool:
        return self.status in JobStatus.FINISHED

    @property
    def queue_seconds(self) -> Optional[float]:
        """Time spent waiting for a worker (monotonic)."""
        if self.started_monotonic is None:
            return None
        return max(0.0, self.started_monotonic - self.submitted_monotonic)

    @property
    def run_seconds(self) -> Optional[float]:
        """Time spent executing (monotonic)."""
        if self.started_monotonic is None or self.finished_monotonic is None:
            return None
        return max(0.0, self.finished_monotonic - self.started_monotonic)

    def as_dict(self) -> Dict:
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "queue_seconds": self.queue_seconds,
            "run_seconds": self.run_seconds,
            "result": self.result,
            "error": self.error,
            "details": dict(self.details),
        }


class JobStore:
    """Thread-safe bounded store of job records.

    Finished jobs are evicted oldest-first once ``max_jobs`` is exceeded, so a
    long-lived service cannot leak memory through its job history.  Unfinished
    jobs are never evicted.
    """

    def __init__(self, max_jobs: int = 1000):
        if max_jobs < 1:
            raise ServeError(f"max_jobs must be >= 1, got {max_jobs}")
        self.max_jobs = int(max_jobs)
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.Lock()

    def create(self, kind: str, details: Optional[Dict] = None) -> Job:
        job = Job(job_id=uuid.uuid4().hex, kind=kind, details=dict(details or {}))
        with self._lock:
            self._jobs[job.job_id] = job
            self._evict_locked()
        return job

    def _evict_locked(self) -> None:
        if len(self._jobs) <= self.max_jobs:
            return
        finished = sorted(
            (job for job in self._jobs.values() if job.is_finished),
            key=lambda job: (
                job.finished_monotonic
                if job.finished_monotonic is not None
                else job.submitted_monotonic
            ),
        )
        for job in finished[: len(self._jobs) - self.max_jobs]:
            del self._jobs[job.job_id]

    def get(self, job_id: str) -> Job:
        with self._lock:
            if job_id not in self._jobs:
                raise ServeError(f"unknown job {job_id!r}")
            return self._jobs[job_id]

    def mark_running(self, job_id: str) -> None:
        job = self.get(job_id)
        job.status = JobStatus.RUNNING
        job.started_at = time.time()
        job.started_monotonic = time.monotonic()

    def mark_succeeded(self, job_id: str, result: Dict) -> None:
        job = self.get(job_id)
        # Publish the payload before the terminal status: pollers stop at the
        # first finished status they see and must never observe it with the
        # result still unset.
        job.result = result
        job.finished_at = time.time()
        job.finished_monotonic = time.monotonic()
        job.status = JobStatus.SUCCEEDED

    def mark_failed(self, job_id: str, error: str) -> None:
        job = self.get(job_id)
        job.error = error
        job.finished_at = time.time()
        job.finished_monotonic = time.monotonic()
        job.status = JobStatus.FAILED

    def list(self, limit: int = 50) -> List[Job]:
        """Most recent jobs first."""
        with self._lock:
            jobs = sorted(
                self._jobs.values(), key=lambda job: job.submitted_monotonic, reverse=True
            )
        return jobs[: max(0, int(limit))]

    def counts(self) -> Dict[str, int]:
        with self._lock:
            counters: Dict[str, int] = {}
            for job in self._jobs.values():
                counters[job.status] = counters.get(job.status, 0) + 1
            counters["total"] = len(self._jobs)
        return counters


class WorkerPool:
    """Fixed pool of daemon threads executing jobs from a shared queue.

    When a :class:`~repro.serve.metrics.MetricsRegistry` is given, the pool
    records submission/outcome counters, job wall time, and the depth of its
    work queue.
    """

    def __init__(self, num_workers: int = 2, store: Optional[JobStore] = None, metrics=None):
        if num_workers < 1:
            raise ServeError(f"num_workers must be >= 1, got {num_workers}")
        self.store = store or JobStore()
        self._metrics = metrics
        if metrics is not None:
            self._m_submitted = metrics.counter("jobs.submitted_total", "jobs accepted")
            self._m_succeeded = metrics.counter("jobs.succeeded_total", "jobs that succeeded")
            self._m_failed = metrics.counter("jobs.failed_total", "jobs that failed")
            self._m_run_seconds = metrics.histogram("jobs.run_seconds", "job wall time")
            self._m_queue_depth = metrics.gauge("jobs.queue_depth", "jobs waiting for a worker")
        self._queue: "queue.Queue" = queue.Queue()
        self._stop = threading.Event()
        self._threads = [
            threading.Thread(target=self._worker, name=f"repro-serve-worker-{i}", daemon=True)
            for i in range(int(num_workers))
        ]
        for thread in self._threads:
            thread.start()

    @property
    def num_workers(self) -> int:
        return len(self._threads)

    def submit(
        self, fn: Callable[[], Dict], kind: str = "diagnosis", details: Optional[Dict] = None
    ) -> Job:
        """Queue ``fn`` for execution and return its (pending) job record."""
        if self._stop.is_set():
            raise ServeError("worker pool is shut down")
        job = self.store.create(kind=kind, details=details)
        self._queue.put((job.job_id, fn))
        if self._metrics is not None:
            self._m_submitted.inc()
            self._m_queue_depth.set(self._queue.qsize())
        # shutdown() may have enqueued the stop sentinels between our check
        # and the put, leaving this job behind them forever; fail it rather
        # than let it sit PENDING with every worker gone.
        if self._stop.is_set():
            self._fail_pending()
        return job

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            job_id, fn = item
            self.store.mark_running(job_id)
            if self._metrics is not None:
                self._m_queue_depth.set(self._queue.qsize())
            start = time.perf_counter()
            try:
                self.store.mark_succeeded(job_id, fn())
                if self._metrics is not None:
                    self._m_succeeded.inc()
            except Exception as error:  # noqa: BLE001 - job outcome, not a crash
                self.store.mark_failed(job_id, f"{type(error).__name__}: {error}")
                if self._metrics is not None:
                    self._m_failed.inc()
            finally:
                if self._metrics is not None:
                    self._m_run_seconds.observe(time.perf_counter() - start)

    def wait_for(self, job_id: str, timeout: float = 30.0, poll: float = 0.01) -> Job:
        """Block until ``job_id`` finishes (convenience for tests and CLIs)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            job = self.store.get(job_id)
            if job.is_finished:
                return job
            time.sleep(poll)
        raise ServeError(f"job {job_id!r} did not finish within {timeout} seconds")

    def _fail_pending(self) -> None:
        """Mark every job still in the queue as failed (pool is going away)."""
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is not None:
                job_id, _ = item
                self.store.mark_failed(job_id, "worker pool shut down before the job ran")

    def shutdown(self, wait: bool = True, timeout: float = 5.0) -> None:
        self._stop.set()
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join(timeout=timeout)
            self._fail_pending()
