"""JSON-over-HTTP front end for the diagnosis service (stdlib only).

Endpoints
---------

``GET /health``
    Liveness plus the registered model names.
``GET /models``
    Manifest records of every registered artifact version.
``GET /stats``
    Engine/cache/job counters.
``GET /metrics``
    The service's metrics registry (counters/gauges/histograms) as JSON.
``GET /monitor``
    Drift/alert snapshot of the online monitor (``?refresh=1`` re-evaluates
    the drift windows before reporting).
``POST /diagnose``
    Synchronous diagnosis.  Body: ``{"model": str, "inputs": [[...], ...],
    "labels": [...], "version"?: str, "metadata"?: {}}``.  Returns the
    :class:`~repro.core.DefectReport` as JSON.
``POST /jobs``
    Same body as ``/diagnose`` but asynchronous; returns ``{"job_id": ...}``.
``GET /jobs/<id>``
    Status (and, when finished, result or error) of one job.

The server is a ``ThreadingHTTPServer``: each connection gets a thread, and
concurrent ``/diagnose`` requests are exactly what the batching engine
coalesces into shared extraction passes.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional

from ..exceptions import PayloadTooLargeError, ServeError
from ..obs import (
    SpanContext,
    bind_request_id,
    get_logger,
    get_tracer,
    log_event,
    new_request_id,
    unbind_request_id,
)
from ..resilience import (
    bind_deadline,
    check_deadline,
    configure_chaos,
    corrupt_bytes,
    get_injector,
    unbind_deadline,
)
from ..wire import Codec, get_codec
from .metrics import render_registries_text
from .protocol import (
    error_response,
    is_loopback_peer,
    negotiate_codecs,
    parse_diagnosis_request,
    parse_json_body,
    resolve_deadline,
    resolve_request_id,
    wants_text_metrics,
)
from .service import DiagnosisService

__all__ = ["DiagnosisHTTPServer", "serve_forever"]

#: Default request-body cap.  Kept deliberately modest (a 16 MiB JSON batch is
#: already thousands of production cases); a hostile Content-Length can no
#: longer make a handler thread buffer hundreds of megabytes.
_MAX_BODY_BYTES = 16 * 1024 * 1024

#: Per-socket timeout: a client that stops sending (or reading) mid-request
#: frees its handler thread after this many seconds instead of pinning it.
_SOCKET_TIMEOUT_SECONDS = 30.0

_LOG = get_logger("serve.http")


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the bound :class:`DiagnosisService`."""

    service: DiagnosisService  # injected by DiagnosisHTTPServer
    protocol_version = "HTTP/1.1"
    timeout = _SOCKET_TIMEOUT_SECONDS  # honored by StreamRequestHandler.setup()

    #: Request id of the request currently being handled (one handler instance
    #: per connection, one request at a time on its thread).
    _request_id: Optional[str] = None
    _last_status: int = 0

    # -- plumbing ----------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send_body(self, body: bytes, content_type: str, status: int = 200) -> None:
        self._last_status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self._request_id is not None:
            self.send_header("X-Request-ID", self._request_id)
        self.end_headers()
        self._write_response(body)

    def _write_response(self, body: bytes) -> None:
        """Write the response body under the per-socket timeout.

        The socket timeout set in ``setup()`` covers writes too: a peer that
        stops *reading* (slow loris on the response path) trips it here, and
        the connection is closed instead of pinning the handler thread on a
        full kernel buffer.
        """
        try:
            self.wfile.write(body)
        except (TimeoutError, OSError):
            self.close_connection = True

    def _send_json(self, payload: Dict, status: int = 200) -> None:
        self._send_body(json.dumps(payload).encode("utf-8"), "application/json", status)

    def _send_text(self, text: str, content_type: str, status: int = 200) -> None:
        self._send_body(text.encode("utf-8"), content_type, status)

    def _send_error_json(self, message: str, status: int) -> None:
        self._send_error_payload({"error": message}, status)

    def _send_error_payload(self, payload: Dict, status: int, extra_headers=()) -> None:
        # Error paths may not have drained the request body; under HTTP/1.1
        # keep-alive the unread bytes would be parsed as the next request
        # line, desynchronizing the connection.  Close it instead.
        self.close_connection = True
        self._last_status = status
        if self._request_id is not None:
            payload.setdefault("request_id", self._request_id)
        self.send_response(status)
        body = json.dumps(payload).encode("utf-8")
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Connection", "close")
        if self._request_id is not None:
            self.send_header("X-Request-ID", self._request_id)
        for name, value in extra_headers:
            self.send_header(name, value)
        self.end_headers()
        self._write_response(body)

    def _handle_traced(self, method: str, handler: Callable[[], None]) -> None:
        """Run one route under the request's identity and root span.

        Accepts/generates ``X-Request-ID``, binds it to the handler thread's
        context (so spans and structured log lines are stamped with it), and
        parents the server-side root span under a client-sent
        ``X-Trace-Parent``, stitching remote client and server into one trace.
        """
        start = time.perf_counter()
        self._request_id = resolve_request_id(
            self.headers.get("X-Request-ID"), new_request_id
        )
        self._last_status = 0
        token = bind_request_id(self._request_id)
        # The client's remaining budget, visible to every downstream stage
        # (service dispatch, batching queue) through the handler thread's
        # context — same propagation as the gateway's.
        deadline_token = bind_deadline(resolve_deadline(self.headers))
        try:
            with get_tracer().span(
                "http.request",
                {"method": method, "path": self.path, "request_id": self._request_id},
                parent=SpanContext.from_header_value(self.headers.get("X-Trace-Parent")),
                kind="request",
            ) as root:
                handler()
                root.set_attribute("status", self._last_status)
            log_event(
                _LOG,
                "request",
                method=method,
                path=self.path,
                status=self._last_status,
                duration_seconds=round(time.perf_counter() - start, 6),
            )
        finally:
            unbind_deadline(deadline_token)
            unbind_request_id(token)

    def _send_exception(self, error: BaseException) -> None:
        """Map an exception through the shared protocol table and send it."""
        status, payload, extra_headers = error_response(error)
        self._send_error_payload(payload, status, extra_headers)

    def _read_body(self) -> bytes:
        """The raw request body, with the size limit enforced before any read."""
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ServeError("request body required")
        limit = getattr(self.server, "max_body_bytes", _MAX_BODY_BYTES)
        if length > limit:
            raise PayloadTooLargeError(f"request body of {length} bytes exceeds {limit}")
        return self.rfile.read(length)

    def _negotiate(self) -> "tuple[Codec, Codec]":
        """(request codec, response codec) — shared negotiation with the gateway.

        Both front ends resolve codecs through
        :func:`repro.serve.protocol.negotiate_codecs`, so Content-Type/Accept
        handling (JSON when unspecified, 415 on unknown media types) cannot
        drift apart.
        """
        headers = {
            "content-type": self.headers.get("Content-Type"),
            "accept": self.headers.get("Accept"),
        }
        return negotiate_codecs(
            headers, default=getattr(self.server, "default_codec", None)
        )

    #: Shared with the asyncio gateway (repro.serve.protocol) so the two
    #: front ends cannot drift apart on the request schema — both parse the
    #: v1 DiagnosisRequest document of repro.api.schema.
    _parse_request = staticmethod(parse_diagnosis_request)

    # -- routes -------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        self._handle_traced("GET", self._do_get)

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        self._handle_traced("POST", self._do_post)

    def _do_get(self) -> None:
        try:
            raw_path, _, query = self.path.partition("?")
            path = raw_path.rstrip("/") or "/"
            if path == "/health":
                self._send_json({"status": "ok", "models": self.service.registry.models()})
            elif path == "/healthz":
                self._send_json(
                    {
                        "status": "ok" if self.service.engine.is_running else "degraded",
                        "tracing": get_tracer().enabled,
                    }
                )
            elif path == "/debug/traces":
                self._send_json(get_tracer().debug_payload())
            elif path == "/debug/chaos":
                self._send_json(get_injector().stats())
            elif path == "/models":
                self._send_json({"models": self.service.models()})
            elif path == "/stats":
                self._send_json(self.service.stats())
            elif path == "/metrics":
                if wants_text_metrics(query, self.headers.get("Accept")):
                    self._send_text(
                        render_registries_text(
                            [(self.service.metrics.as_dict(), {"component": "service"})]
                        ),
                        "text/plain; version=0.0.4; charset=utf-8",
                    )
                else:
                    self._send_json({"service": self.service.metrics.as_dict()})
            elif path == "/monitor":
                refresh = any(
                    piece in ("refresh=1", "refresh=true") for piece in query.split("&")
                )
                self._send_json(self.service.monitor_payload(refresh=refresh))
            elif path == "/jobs":
                self._send_json({"jobs": [job.as_dict() for job in self.service.jobs.list()]})
            elif path.startswith("/jobs/"):
                job_id = path[len("/jobs/"):]
                try:
                    self._send_json(self.service.jobs.get(job_id).as_dict())
                except ServeError:
                    self._send_error_json(f"unknown job {job_id!r}", 404)
            else:
                self._send_error_json(f"unknown path {path!r}", 404)
        except Exception as error:  # noqa: BLE001 - surface as a 500, keep serving
            self._send_error_json(f"{type(error).__name__}: {error}", 500)

    def _do_post(self) -> None:
        try:
            path = self.path.split("?", 1)[0].rstrip("/")
            if path == "/debug/chaos":
                # Runtime chaos control mutates process-global state: only
                # the operator's own host may, and never through a proxy.
                if not is_loopback_peer(self.client_address):
                    self._send_error_json("chaos control is loopback-only", 403)
                    return
                injector = configure_chaos(parse_json_body(self._read_body()))
                self._send_json(injector.stats())
            elif path == "/diagnose":
                # Admission gate: an already-spent budget is a typed 504
                # before the body is decoded or any diagnosis work starts.
                check_deadline("admission")
                request_codec, response_codec = self._negotiate()
                body = self._read_body()
                injector = get_injector()
                if injector.enabled and injector.inject("codec.decode") == "corrupt":
                    body = corrupt_bytes(body)
                request = request_codec.decode_request(body)
                report = self.service.diagnose_dict(
                    request.model,
                    request.inputs,
                    request.labels,
                    version=request.version,
                    metadata=request.metadata,
                )
                self._send_body(
                    response_codec.encode_report(report), response_codec.content_type
                )
            elif path == "/jobs":
                request_codec, _ = self._negotiate()
                request = request_codec.decode_request(self._read_body())
                job = self.service.submit_diagnosis(
                    request.model,
                    request.inputs,
                    request.labels,
                    version=request.version,
                    metadata=request.metadata,
                )
                self._send_json({"job_id": job.job_id, "status": job.status}, status=202)
            else:
                self._send_error_json(f"unknown path {path!r}", 404)
        except Exception as error:  # noqa: BLE001 - mapped to a status, keep serving
            self._send_exception(error)


class DiagnosisHTTPServer:
    """A threaded HTTP server bound to one :class:`DiagnosisService`.

    ``port=0`` binds an ephemeral port (see :attr:`port` after construction),
    which is what the tests use.
    """

    def __init__(
        self,
        service: DiagnosisService,
        host: str = "127.0.0.1",
        port: int = 8421,
        verbose: bool = False,
        max_body_bytes: int = _MAX_BODY_BYTES,
        socket_timeout: float = _SOCKET_TIMEOUT_SECONDS,
        default_codec: "str | Codec" = "json",
    ):
        self.service = service
        handler = type(
            "BoundHandler", (_Handler,), {"service": service, "timeout": float(socket_timeout)}
        )
        server_cls = type(
            "BoundThreadingHTTPServer", (ThreadingHTTPServer,), {"request_queue_size": 128}
        )
        self._server = server_cls((host, port), handler)
        # Hardening: handler threads must not block interpreter exit, a burst
        # of connections must not overflow the default listen backlog of 5,
        # and a slow/hostile client is bounded by the per-socket timeout and
        # the body-size cap rather than by available memory.
        self._server.daemon_threads = True
        self._server.max_body_bytes = int(max_body_bytes)
        self._server.default_codec = get_codec(default_codec)
        self._server.verbose = verbose
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return int(self._server.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "DiagnosisHTTPServer":
        """Serve on a background thread (for tests and embedding)."""
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._server.serve_forever, name="repro-serve-http", daemon=True
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI entry point)."""
        self._server.serve_forever()

    def shutdown(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


def serve_forever(
    service: DiagnosisService,
    host: str = "127.0.0.1",
    port: int = 8421,
    verbose: bool = False,
    default_codec: "str | Codec" = "json",
) -> None:
    """Convenience wrapper: bind, announce, and serve until interrupted."""
    server = DiagnosisHTTPServer(
        service, host=host, port=port, verbose=verbose, default_codec=default_codec
    )
    print(f"repro-serve listening on {server.url} "
          f"(models: {', '.join(service.registry.models()) or 'none registered'})")
    try:
        server.serve_forever()
    finally:
        server.shutdown()
