"""repro.serve — a batched, cached diagnosis service layer over DeepMorph.

The paper's pipeline runs one-shot: ``fit`` then ``diagnose``.  This package
turns it into a long-lived service for production traffic:

* :mod:`~repro.serve.registry` — persist/load fitted DeepMorph artifacts by
  name and version on top of :mod:`repro.serialize`.
* :mod:`~repro.serve.cache` — a thread-safe LRU cache of per-case footprint
  extraction results keyed on input digest.
* :mod:`~repro.serve.batching` — coalesce concurrent diagnosis requests into
  single vectorized instrumented passes.
* :mod:`~repro.serve.jobs` — worker pool and job store for asynchronous
  diagnosis with polled status.
* :mod:`~repro.serve.service` — :class:`DiagnosisService`, the facade tying
  the pieces together.
* :mod:`~repro.serve.http` — a stdlib JSON-over-HTTP front end
  (``repro-serve`` on the command line).

Quickstart::

    from repro.serve import ArtifactRegistry, DiagnosisService

    registry = ArtifactRegistry("./registry")
    registry.register("prod-lenet", fitted_morph)

    with DiagnosisService(registry) as service:
        report = service.diagnose("prod-lenet", inputs, labels)
        print(report.summary())
"""

from .batching import BatchingEngine, ExtractionRequest
from .cache import FootprintCache, LRUCache, input_digest
from .http import DiagnosisHTTPServer, serve_forever
from .jobs import Job, JobStatus, JobStore, WorkerPool
from .registry import ArtifactRecord, ArtifactRegistry
from .service import DiagnosisService, LoadedModel

__all__ = [
    "ArtifactRecord",
    "ArtifactRegistry",
    "BatchingEngine",
    "DiagnosisHTTPServer",
    "DiagnosisService",
    "ExtractionRequest",
    "FootprintCache",
    "Job",
    "JobStatus",
    "JobStore",
    "LRUCache",
    "LoadedModel",
    "WorkerPool",
    "input_digest",
    "serve_forever",
]
