"""repro.serve — a batched, cached, scale-out diagnosis service over DeepMorph.

The paper's pipeline runs one-shot: ``fit`` then ``diagnose``.  This package
turns it into a long-lived service for production traffic:

* :mod:`~repro.serve.registry` — persist/load fitted DeepMorph artifacts by
  name and version on top of :mod:`repro.serialize`.
* :mod:`~repro.serve.cache` — a thread-safe LRU cache of per-case footprint
  extraction results keyed on input digest.
* :mod:`~repro.serve.batching` — coalesce concurrent diagnosis requests into
  single vectorized instrumented passes.
* :mod:`~repro.serve.jobs` — worker pool and job store for asynchronous
  diagnosis with polled status.
* :mod:`~repro.serve.metrics` — counters/gauges/histograms shared by every
  layer and exposed at ``GET /metrics``.
* :mod:`~repro.serve.service` — :class:`DiagnosisService`, the facade tying
  the pieces together.
* :mod:`~repro.serve.replicas` — :class:`ReplicaPool`: N service replicas
  with queue-depth-aware routing and admission control.
* :mod:`~repro.serve.http` — the legacy thread-per-connection JSON/HTTP
  front end (compatibility path).
* :mod:`~repro.serve.gateway` — the asyncio event-loop front end
  (``repro-serve --async`` on the command line).

Quickstart::

    from repro.serve import ArtifactRegistry, DiagnosisService

    registry = ArtifactRegistry("./registry")
    registry.register("prod-lenet", fitted_morph)

    with DiagnosisService(registry) as service:
        report = service.diagnose("prod-lenet", inputs, labels)
        print(report.summary())

Scale-out::

    from repro.serve import DiagnosisGateway, ReplicaPool

    pool = ReplicaPool.from_registry("./registry", num_replicas=4)
    gateway = DiagnosisGateway(pool, port=8421).start()
"""

from .batching import BatchingEngine, ExtractionRequest
from .cache import FootprintCache, LRUCache, input_digest
from .gateway import DiagnosisGateway, parse_request_head, serve_gateway_forever
from .http import DiagnosisHTTPServer, serve_forever
from .jobs import Job, JobStatus, JobStore, WorkerPool
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, merge_counters
from .registry import ArtifactRecord, ArtifactRegistry
from .replicas import ReplicaLease, ReplicaPool
from .service import DiagnosisService, LoadedModel

__all__ = [
    "ArtifactRecord",
    "ArtifactRegistry",
    "BatchingEngine",
    "Counter",
    "DiagnosisGateway",
    "DiagnosisHTTPServer",
    "DiagnosisService",
    "ExtractionRequest",
    "FootprintCache",
    "Gauge",
    "Histogram",
    "Job",
    "JobStatus",
    "JobStore",
    "LRUCache",
    "LoadedModel",
    "MetricsRegistry",
    "ReplicaLease",
    "ReplicaPool",
    "WorkerPool",
    "input_digest",
    "merge_counters",
    "parse_request_head",
    "serve_forever",
    "serve_gateway_forever",
]
