"""Replica sharding and admission control for the serving gateway.

One :class:`~repro.serve.service.DiagnosisService` serializes every
extraction on its single engine thread — correct, but a scale ceiling: two
requests for *different* models still queue behind each other.  The
:class:`ReplicaPool` runs N independent service replicas (each with its own
engine thread, loaded-model LRU, and footprint cache) over the same artifact
registry, so independent requests extract in parallel while each individual
replica keeps its single-forward-pass-at-a-time invariant.

Routing is queue-depth aware: a request goes to the replica with the fewest
in-flight requests, with a round-robin pointer breaking ties so equally-idle
replicas share the load.  Admission control is a two-level bound — a
per-replica queue cap and a pool-wide in-flight cap — and a request that fits
under neither is shed immediately with
:class:`~repro.exceptions.ServiceSaturatedError` (surfaced by the HTTP layer
as ``503`` + ``Retry-After``) instead of being buffered without bound.

The pool is also the replica supervisor.  Each replica carries a
:class:`~repro.resilience.ReplicaHealth` state machine: infrastructure
faults (engine timeouts, a stopped engine — never a client's bad request)
count against a consecutive-failure threshold, routing skips quarantined
replicas, and a background supervisor thread probes quarantined replicas on
the policy's cadence, re-admitting them once a synthetic probe succeeds.
Health is surfaced through :meth:`ReplicaPool.health_snapshot` (the
``/healthz`` degraded/unavailable states) and pool metrics.
"""

from __future__ import annotations

import time
import threading
from concurrent.futures import TimeoutError as _FuturesTimeoutError
from typing import Callable, Dict, List, Optional, Tuple

from ..exceptions import (
    ArtifactNotFoundError,
    ConfigurationError,
    DeadlineExceededError,
    ServeError,
    ServiceSaturatedError,
)
from ..obs import span as obs_span
from ..resilience import HealthPolicy, HealthState, ReplicaHealth
from .metrics import DEFAULT_SIZE_BUCKETS, MetricsRegistry, merge_counters
from .service import DiagnosisService

__all__ = ["ReplicaLease", "ReplicaPool", "is_infrastructure_fault"]

#: Failures that say something about the *request*, not the replica: routing
#: more traffic away from a replica because a client sent an unknown model or
#: an expired deadline would let one bad client eject the whole pool.
_CLIENT_FAULTS = (
    ArtifactNotFoundError,
    ConfigurationError,  # includes NoFaultyCasesError and validation errors
    DeadlineExceededError,
    ServiceSaturatedError,
    ValueError,  # schema/shape/dataset errors all mix in ValueError
)


def is_infrastructure_fault(error: BaseException) -> bool:
    """Whether ``error`` counts against the serving replica's health.

    Timeouts and generic service-layer failures (a stopped engine, a crashed
    worker) are the replica's problem; typed request errors are the client's.
    """
    if isinstance(error, _CLIENT_FAULTS):
        return False
    return isinstance(
        error,
        (TimeoutError, _FuturesTimeoutError, ServeError, RuntimeError, OSError),
    )


class _Replica:
    """One pool member: a service plus its admission bookkeeping."""

    def __init__(self, index: int, service: DiagnosisService, policy: HealthPolicy):
        self.index = index
        self.service = service
        self.inflight = 0
        self.assigned_total = 0
        self.health = ReplicaHealth(policy)
        self.m_inflight = service.metrics.gauge(
            "replica.inflight", "requests currently admitted to this replica"
        )
        self.m_assigned = service.metrics.counter(
            "replica.assigned_total", "requests ever routed to this replica"
        )


class ReplicaLease:
    """An admitted slot on one replica; release it when the request finishes.

    Usable as a context manager::

        with pool.acquire() as service:
            report = service.diagnose_dict(...)
    """

    def __init__(self, pool: "ReplicaPool", replica: _Replica):
        self._pool = pool
        self._replica = replica
        self._released = False

    @property
    def service(self) -> DiagnosisService:
        return self._replica.service

    @property
    def replica_index(self) -> int:
        return self._replica.index

    def release(
        self,
        error: Optional[BaseException] = None,
        latency_seconds: Optional[float] = None,
    ) -> None:
        """Return the slot, feeding the request's outcome to replica health.

        ``error=None`` records a success (resets the replica's failure
        streak); an infrastructure fault counts toward ejection; a client
        error is neutral — it says nothing about the replica.
        """
        if not self._released:
            self._released = True
            self._pool._release(self._replica, error=error, latency_seconds=latency_seconds)

    def __enter__(self) -> DiagnosisService:
        return self._replica.service

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release(error=exc)


class ReplicaPool:
    """N diagnosis-service replicas behind queue-depth-aware admission.

    Parameters
    ----------
    factory:
        ``factory(index) -> DiagnosisService`` building one replica.  Use
        :meth:`from_registry` for the common same-registry case.
    num_replicas:
        Pool size.  Each replica owns a full service stack (engine thread,
        cache, worker pool), so memory scales with this.
    max_queue_per_replica:
        In-flight requests one replica accepts before it stops being an
        admission candidate.
    max_inflight:
        Pool-wide in-flight cap; defaults to
        ``num_replicas * max_queue_per_replica``.
    retry_after_seconds:
        Hint attached to shed requests (the HTTP ``Retry-After`` value).
    metrics:
        Pool-level registry (admissions, sheds, in-flight); defaults to a
        fresh one.  Per-replica instruments live in each replica service's
        own registry.
    health_policy:
        Replica supervision knobs (:class:`~repro.resilience.HealthPolicy`);
        defaults to the policy's own defaults.
    probe:
        ``probe(service) -> None`` run by the supervisor against a
        quarantined replica; raising means "still broken".  Defaults to
        listing the replica's models — cheap, but exercises the service
        object end to end.
    """

    def __init__(
        self,
        factory: Callable[[int], DiagnosisService],
        num_replicas: int = 2,
        max_queue_per_replica: int = 8,
        max_inflight: Optional[int] = None,
        retry_after_seconds: float = 1.0,
        metrics: Optional[MetricsRegistry] = None,
        health_policy: Optional[HealthPolicy] = None,
        probe: Optional[Callable[[DiagnosisService], None]] = None,
    ):
        if num_replicas < 1:
            raise ServeError(f"num_replicas must be >= 1, got {num_replicas}")
        if max_queue_per_replica < 1:
            raise ServeError(f"max_queue_per_replica must be >= 1, got {max_queue_per_replica}")
        if max_inflight is None:
            max_inflight = num_replicas * max_queue_per_replica
        if max_inflight < 1:
            raise ServeError(f"max_inflight must be >= 1, got {max_inflight}")
        self.max_queue_per_replica = int(max_queue_per_replica)
        self.max_inflight = int(max_inflight)
        self.retry_after_seconds = float(retry_after_seconds)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.health_policy = health_policy if health_policy is not None else HealthPolicy()
        self._probe = probe if probe is not None else self._default_probe
        self._replicas = [
            _Replica(i, factory(i), self.health_policy) for i in range(int(num_replicas))
        ]
        self._lock = threading.Lock()
        self._next = 0
        self._closed = False
        self._stop_supervisor = threading.Event()
        self._supervisor: Optional[threading.Thread] = None
        self._m_admitted = self.metrics.counter(
            "pool.admitted_total", "requests admitted to a replica"
        )
        self._m_shed = self.metrics.counter(
            "pool.shed_total", "requests rejected by admission control"
        )
        self._m_inflight = self.metrics.gauge(
            "pool.inflight", "requests currently in flight across all replicas"
        )
        self._m_depth = self.metrics.histogram(
            "pool.admitted_queue_depth",
            "chosen replica's queue depth at admission (admitted requests)",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._m_ejections = self.metrics.counter(
            "pool.ejections_total", "replicas quarantined after consecutive faults"
        )
        self._m_readmissions = self.metrics.counter(
            "pool.readmissions_total", "quarantined replicas re-admitted by a probe"
        )
        self._m_quarantined = self.metrics.gauge(
            "pool.quarantined", "replicas currently quarantined"
        )

    @staticmethod
    def _default_probe(service: DiagnosisService) -> None:
        service.registry.models()

    @classmethod
    def from_registry(
        cls,
        registry,
        num_replicas: int = 2,
        max_queue_per_replica: int = 8,
        max_inflight: Optional[int] = None,
        retry_after_seconds: float = 1.0,
        metrics: Optional[MetricsRegistry] = None,
        health_policy: Optional[HealthPolicy] = None,
        probe: Optional[Callable[[DiagnosisService], None]] = None,
        **service_kwargs,
    ) -> "ReplicaPool":
        """Build a pool of identical replicas over one artifact registry.

        ``registry`` may be a path or an ``ArtifactRegistry``;
        ``service_kwargs`` are forwarded to every
        :class:`~repro.serve.service.DiagnosisService`.
        """

        def factory(index: int) -> DiagnosisService:
            return DiagnosisService(registry, **service_kwargs)

        return cls(
            factory,
            num_replicas=num_replicas,
            max_queue_per_replica=max_queue_per_replica,
            max_inflight=max_inflight,
            retry_after_seconds=retry_after_seconds,
            metrics=metrics,
            health_policy=health_policy,
            probe=probe,
        )

    # -- admission -----------------------------------------------------------------

    @property
    def num_replicas(self) -> int:
        return len(self._replicas)

    @property
    def inflight(self) -> int:
        with self._lock:
            return sum(replica.inflight for replica in self._replicas)

    def acquire(self) -> ReplicaLease:
        """Admit one request, returning a lease on the least-loaded replica.

        Raises :class:`~repro.exceptions.ServiceSaturatedError` when the
        pool-wide cap is reached or every replica queue is full.
        """
        with obs_span("replicas.route") as route_span, self._lock:
            if self._closed:
                raise ServeError("replica pool is closed")
            total = sum(replica.inflight for replica in self._replicas)
            if total >= self.max_inflight:
                self._m_shed.inc()
                raise ServiceSaturatedError(
                    f"{total} requests in flight (max {self.max_inflight}); retry later",
                    retry_after=self.retry_after_seconds,
                )
            count = len(self._replicas)
            best: Optional[_Replica] = None
            quarantined = 0
            for offset in range(count):
                replica = self._replicas[(self._next + offset) % count]
                if not replica.health.is_healthy:
                    quarantined += 1
                    continue
                if replica.inflight >= self.max_queue_per_replica:
                    continue
                if best is None or replica.inflight < best.inflight:
                    best = replica
            if best is None:
                self._m_shed.inc()
                if quarantined == count:
                    raise ServiceSaturatedError(
                        f"all {count} replicas quarantined; retry later",
                        retry_after=self.retry_after_seconds,
                    )
                raise ServiceSaturatedError(
                    f"all {count - quarantined} healthy replica queues at capacity "
                    f"({self.max_queue_per_replica} each"
                    + (f", {quarantined} quarantined" if quarantined else "")
                    + "); retry later",
                    retry_after=self.retry_after_seconds,
                )
            route_span.set_attributes(
                {"replica": best.index, "replica_inflight": best.inflight, "pool_inflight": total}
            )
            self._next = (best.index + 1) % count
            self._m_depth.observe(best.inflight)
            best.inflight += 1
            best.assigned_total += 1
            best.m_inflight.set(best.inflight)
            best.m_assigned.inc()
            self._m_admitted.inc()
            self._m_inflight.set(total + 1)
            return ReplicaLease(self, best)

    def _release(
        self,
        replica: _Replica,
        error: Optional[BaseException] = None,
        latency_seconds: Optional[float] = None,
    ) -> None:
        ejected = False
        if error is None:
            replica.health.record_success(latency_seconds)
        elif is_infrastructure_fault(error):
            ejected = replica.health.record_failure(latency_seconds)
        with self._lock:
            replica.inflight = max(0, replica.inflight - 1)
            replica.m_inflight.set(replica.inflight)
            self._m_inflight.set(sum(r.inflight for r in self._replicas))
            if ejected:
                self._m_ejections.inc()
                self._m_quarantined.set(self._quarantined_count())
                self._ensure_supervisor_locked()

    # -- request helpers (used by the gateway's executor threads) -------------------

    def diagnose_dict(self, name: str, inputs, labels, **kwargs) -> Dict:
        """Admit, route, diagnose, release — the gateway's synchronous path."""
        lease = self.acquire()
        started = time.perf_counter()
        try:
            report = lease.service.diagnose_dict(name, inputs, labels, **kwargs)
        except BaseException as error:
            lease.release(error=error, latency_seconds=time.perf_counter() - started)
            raise
        lease.release(latency_seconds=time.perf_counter() - started)
        return report

    def submit_job(self, name: str, inputs, labels, **kwargs):
        """Route an asynchronous diagnosis to the least-loaded replica.

        Jobs are bounded by each replica's job store rather than the
        admission window (they do not hold a connection open), so routing
        considers current in-flight load but never sheds.
        """
        with self._lock:
            if self._closed:
                raise ServeError("replica pool is closed")
            count = len(self._replicas)
            # Prefer healthy replicas; an all-quarantined pool still accepts
            # jobs (they are deferred work — the replica may recover first).
            ordered = [self._replicas[(self._next + offset) % count] for offset in range(count)]
            candidates = [r for r in ordered if r.health.is_healthy] or ordered
            best = candidates[0]
            for replica in candidates[1:]:
                if replica.inflight < best.inflight:
                    best = replica
            self._next = (best.index + 1) % count
        job = best.service.submit_diagnosis(name, inputs, labels, **kwargs)
        return best.index, job

    def monitor_snapshot(self, refresh: bool = False) -> Dict:
        """Aggregate ``GET /monitor`` payload across the replicas.

        Each replica carries its own monitor sink (windows and drift state
        are per-replica, like the metrics registries); the pool view keys
        them by replica index and reports the worst alert level across the
        fleet so a single drifting replica is never averaged away.
        """
        replicas = {}
        worst = "ok"
        severity = {"ok": 0, "warn": 1, "critical": 2}
        enabled = False
        for replica in self._replicas:
            payload = replica.service.monitor_payload(refresh=refresh)
            replicas[str(replica.index)] = payload
            enabled = enabled or bool(payload.get("enabled"))
            level = str(payload.get("level", "ok"))
            if severity.get(level, 0) > severity[worst]:
                worst = level
        return {
            "enabled": enabled,
            "level": worst,
            "level_severity": severity[worst],
            "replicas": replicas,
        }

    def find_job(self, job_id: str) -> Tuple[int, object]:
        """Locate a job by id across every replica's store."""
        for replica in self._replicas:
            try:
                return replica.index, replica.service.jobs.get(job_id)
            except ServeError:
                continue
        raise ServeError(f"unknown job {job_id!r}")

    def list_jobs(self, limit: int = 50) -> List[Dict]:
        """Most recent jobs across all replicas, newest first."""
        merged = []
        for replica in self._replicas:
            for job in replica.service.jobs.list(limit=limit):
                record = job.as_dict()
                record["replica"] = replica.index
                merged.append(record)
        merged.sort(key=lambda record: record["submitted_at"], reverse=True)
        return merged[: max(0, int(limit))]

    # -- supervision -----------------------------------------------------------------

    def _quarantined_count(self) -> int:
        return sum(
            1 for replica in self._replicas if replica.health.state == HealthState.QUARANTINED
        )

    def _ensure_supervisor_locked(self) -> None:
        """Start the probe thread lazily — a pool that never ejects never pays."""
        if self._closed or (self._supervisor is not None and self._supervisor.is_alive()):
            return
        self._stop_supervisor.clear()
        self._supervisor = threading.Thread(
            target=self._supervise_loop, name="repro-pool-supervisor", daemon=True
        )
        self._supervisor.start()

    def _supervise_loop(self) -> None:
        interval = max(0.01, float(self.health_policy.probe_interval_seconds))
        while not self._stop_supervisor.wait(interval):
            if self._closed:
                return
            for replica in self._replicas:
                if not replica.health.probe_due():
                    continue
                with obs_span("replicas.probe", {"replica": replica.index}) as probe_span:
                    try:
                        self._probe(replica.service)
                    except Exception as error:  # noqa: BLE001 - any probe failure extends quarantine
                        probe_span.set_attributes(
                            {"outcome": "failed", "error": type(error).__name__}
                        )
                        replica.health.record_probe_failure()
                    else:
                        probe_span.set_attribute("outcome", "readmitted")
                        replica.health.readmit()
                        self._m_readmissions.inc()
            self._m_quarantined.set(self._quarantined_count())

    def eject_replica(self, index: int) -> None:
        """Force one replica into quarantine (operator/test hook)."""
        replica = self._replicas[index]
        replica.health.eject()
        with self._lock:
            self._m_ejections.inc()
            self._m_quarantined.set(self._quarantined_count())
            self._ensure_supervisor_locked()

    def health_snapshot(self) -> Dict:
        """Aggregate + per-replica health, the substance behind ``/healthz``.

        ``status`` is ``ok`` (every replica healthy), ``degraded`` (some
        quarantined), or ``unavailable`` (all quarantined).
        """
        snapshots = [replica.health.snapshot() for replica in self._replicas]
        quarantined = sum(
            1 for snapshot in snapshots if snapshot["state"] == HealthState.QUARANTINED
        )
        if quarantined == 0:
            status = "ok"
        elif quarantined == len(snapshots):
            status = "unavailable"
        else:
            status = "degraded"
        return {
            "status": status,
            "quarantined": quarantined,
            "replicas": snapshots,
        }

    # -- introspection ---------------------------------------------------------------

    @property
    def replicas(self) -> List[DiagnosisService]:
        return [replica.service for replica in self._replicas]

    def registered_models(self) -> List[str]:
        return self._replicas[0].service.registry.models()

    def records(self) -> List[Dict]:
        return self._replicas[0].service.models()

    def stats(self) -> Dict:
        with self._lock:
            queue_depths = [replica.inflight for replica in self._replicas]
            assigned = [replica.assigned_total for replica in self._replicas]
        return {
            "num_replicas": self.num_replicas,
            "max_queue_per_replica": self.max_queue_per_replica,
            "max_inflight": self.max_inflight,
            "inflight_per_replica": queue_depths,
            "assigned_per_replica": assigned,
            "shed_total": self._m_shed.value,
            "health": self.health_snapshot(),
            "replicas": [replica.service.stats() for replica in self._replicas],
        }

    def metrics_snapshot(self) -> Dict:
        """Pool + per-replica instrument snapshots, with a counter rollup."""
        replica_snapshots = [replica.service.metrics.as_dict() for replica in self._replicas]
        return {
            "pool": self.metrics.as_dict(),
            "replicas": replica_snapshots,
            "aggregate_counters": merge_counters(replica_snapshots),
        }

    # -- lifecycle -------------------------------------------------------------------

    def shutdown(self, timeout: float = 5.0) -> int:
        """Stop admitting, drain in-flight work for up to ``timeout``, close.

        Returns the number of requests still in flight when the drain window
        closed (0 means a clean drain).  Idempotent, like :meth:`close`.
        """
        with self._lock:
            already_closed = self._closed
            self._closed = True
        remaining = 0
        if not already_closed:
            deadline = time.monotonic() + max(0.0, float(timeout))
            while True:
                with self._lock:
                    remaining = sum(replica.inflight for replica in self._replicas)
                if remaining == 0 or time.monotonic() >= deadline:
                    break
                time.sleep(0.01)
        self._stop_supervisor.set()
        supervisor = self._supervisor
        if supervisor is not None and supervisor.is_alive():
            supervisor.join(timeout=2.0)
        for replica in self._replicas:
            replica.service.close()
        return remaining

    def close(self) -> None:
        """Immediate shutdown: no drain window for in-flight requests."""
        self.shutdown(timeout=0.0)

    def __enter__(self) -> "ReplicaPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return (
            f"ReplicaPool(replicas={self.num_replicas}, "
            f"max_queue_per_replica={self.max_queue_per_replica}, "
            f"max_inflight={self.max_inflight})"
        )
