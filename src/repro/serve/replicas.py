"""Replica sharding and admission control for the serving gateway.

One :class:`~repro.serve.service.DiagnosisService` serializes every
extraction on its single engine thread — correct, but a scale ceiling: two
requests for *different* models still queue behind each other.  The
:class:`ReplicaPool` runs N independent service replicas (each with its own
engine thread, loaded-model LRU, and footprint cache) over the same artifact
registry, so independent requests extract in parallel while each individual
replica keeps its single-forward-pass-at-a-time invariant.

Routing is queue-depth aware: a request goes to the replica with the fewest
in-flight requests, with a round-robin pointer breaking ties so equally-idle
replicas share the load.  Admission control is a two-level bound — a
per-replica queue cap and a pool-wide in-flight cap — and a request that fits
under neither is shed immediately with
:class:`~repro.exceptions.ServiceSaturatedError` (surfaced by the HTTP layer
as ``503`` + ``Retry-After``) instead of being buffered without bound.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Tuple

from ..exceptions import ServeError, ServiceSaturatedError
from ..obs import span as obs_span
from .metrics import DEFAULT_SIZE_BUCKETS, MetricsRegistry, merge_counters
from .service import DiagnosisService

__all__ = ["ReplicaLease", "ReplicaPool"]


class _Replica:
    """One pool member: a service plus its admission bookkeeping."""

    def __init__(self, index: int, service: DiagnosisService):
        self.index = index
        self.service = service
        self.inflight = 0
        self.assigned_total = 0
        self.m_inflight = service.metrics.gauge(
            "replica.inflight", "requests currently admitted to this replica"
        )
        self.m_assigned = service.metrics.counter(
            "replica.assigned_total", "requests ever routed to this replica"
        )


class ReplicaLease:
    """An admitted slot on one replica; release it when the request finishes.

    Usable as a context manager::

        with pool.acquire() as service:
            report = service.diagnose_dict(...)
    """

    def __init__(self, pool: "ReplicaPool", replica: _Replica):
        self._pool = pool
        self._replica = replica
        self._released = False

    @property
    def service(self) -> DiagnosisService:
        return self._replica.service

    @property
    def replica_index(self) -> int:
        return self._replica.index

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._pool._release(self._replica)

    def __enter__(self) -> DiagnosisService:
        return self._replica.service

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


class ReplicaPool:
    """N diagnosis-service replicas behind queue-depth-aware admission.

    Parameters
    ----------
    factory:
        ``factory(index) -> DiagnosisService`` building one replica.  Use
        :meth:`from_registry` for the common same-registry case.
    num_replicas:
        Pool size.  Each replica owns a full service stack (engine thread,
        cache, worker pool), so memory scales with this.
    max_queue_per_replica:
        In-flight requests one replica accepts before it stops being an
        admission candidate.
    max_inflight:
        Pool-wide in-flight cap; defaults to
        ``num_replicas * max_queue_per_replica``.
    retry_after_seconds:
        Hint attached to shed requests (the HTTP ``Retry-After`` value).
    metrics:
        Pool-level registry (admissions, sheds, in-flight); defaults to a
        fresh one.  Per-replica instruments live in each replica service's
        own registry.
    """

    def __init__(
        self,
        factory: Callable[[int], DiagnosisService],
        num_replicas: int = 2,
        max_queue_per_replica: int = 8,
        max_inflight: Optional[int] = None,
        retry_after_seconds: float = 1.0,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if num_replicas < 1:
            raise ServeError(f"num_replicas must be >= 1, got {num_replicas}")
        if max_queue_per_replica < 1:
            raise ServeError(f"max_queue_per_replica must be >= 1, got {max_queue_per_replica}")
        if max_inflight is None:
            max_inflight = num_replicas * max_queue_per_replica
        if max_inflight < 1:
            raise ServeError(f"max_inflight must be >= 1, got {max_inflight}")
        self.max_queue_per_replica = int(max_queue_per_replica)
        self.max_inflight = int(max_inflight)
        self.retry_after_seconds = float(retry_after_seconds)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._replicas = [_Replica(i, factory(i)) for i in range(int(num_replicas))]
        self._lock = threading.Lock()
        self._next = 0
        self._closed = False
        self._m_admitted = self.metrics.counter(
            "pool.admitted_total", "requests admitted to a replica"
        )
        self._m_shed = self.metrics.counter(
            "pool.shed_total", "requests rejected by admission control"
        )
        self._m_inflight = self.metrics.gauge(
            "pool.inflight", "requests currently in flight across all replicas"
        )
        self._m_depth = self.metrics.histogram(
            "pool.admitted_queue_depth",
            "chosen replica's queue depth at admission (admitted requests)",
            buckets=DEFAULT_SIZE_BUCKETS,
        )

    @classmethod
    def from_registry(
        cls,
        registry,
        num_replicas: int = 2,
        max_queue_per_replica: int = 8,
        max_inflight: Optional[int] = None,
        retry_after_seconds: float = 1.0,
        metrics: Optional[MetricsRegistry] = None,
        **service_kwargs,
    ) -> "ReplicaPool":
        """Build a pool of identical replicas over one artifact registry.

        ``registry`` may be a path or an ``ArtifactRegistry``;
        ``service_kwargs`` are forwarded to every
        :class:`~repro.serve.service.DiagnosisService`.
        """

        def factory(index: int) -> DiagnosisService:
            return DiagnosisService(registry, **service_kwargs)

        return cls(
            factory,
            num_replicas=num_replicas,
            max_queue_per_replica=max_queue_per_replica,
            max_inflight=max_inflight,
            retry_after_seconds=retry_after_seconds,
            metrics=metrics,
        )

    # -- admission -----------------------------------------------------------------

    @property
    def num_replicas(self) -> int:
        return len(self._replicas)

    @property
    def inflight(self) -> int:
        with self._lock:
            return sum(replica.inflight for replica in self._replicas)

    def acquire(self) -> ReplicaLease:
        """Admit one request, returning a lease on the least-loaded replica.

        Raises :class:`~repro.exceptions.ServiceSaturatedError` when the
        pool-wide cap is reached or every replica queue is full.
        """
        with obs_span("replicas.route") as route_span, self._lock:
            if self._closed:
                raise ServeError("replica pool is closed")
            total = sum(replica.inflight for replica in self._replicas)
            if total >= self.max_inflight:
                self._m_shed.inc()
                raise ServiceSaturatedError(
                    f"{total} requests in flight (max {self.max_inflight}); retry later",
                    retry_after=self.retry_after_seconds,
                )
            count = len(self._replicas)
            best: Optional[_Replica] = None
            for offset in range(count):
                replica = self._replicas[(self._next + offset) % count]
                if replica.inflight >= self.max_queue_per_replica:
                    continue
                if best is None or replica.inflight < best.inflight:
                    best = replica
            if best is None:
                self._m_shed.inc()
                raise ServiceSaturatedError(
                    f"all {count} replica queues at capacity "
                    f"({self.max_queue_per_replica} each); retry later",
                    retry_after=self.retry_after_seconds,
                )
            route_span.set_attributes(
                {"replica": best.index, "replica_inflight": best.inflight, "pool_inflight": total}
            )
            self._next = (best.index + 1) % count
            self._m_depth.observe(best.inflight)
            best.inflight += 1
            best.assigned_total += 1
            best.m_inflight.set(best.inflight)
            best.m_assigned.inc()
            self._m_admitted.inc()
            self._m_inflight.set(total + 1)
            return ReplicaLease(self, best)

    def _release(self, replica: _Replica) -> None:
        with self._lock:
            replica.inflight = max(0, replica.inflight - 1)
            replica.m_inflight.set(replica.inflight)
            self._m_inflight.set(sum(r.inflight for r in self._replicas))

    # -- request helpers (used by the gateway's executor threads) -------------------

    def diagnose_dict(self, name: str, inputs, labels, **kwargs) -> Dict:
        """Admit, route, diagnose, release — the gateway's synchronous path."""
        lease = self.acquire()
        try:
            return lease.service.diagnose_dict(name, inputs, labels, **kwargs)
        finally:
            lease.release()

    def submit_job(self, name: str, inputs, labels, **kwargs):
        """Route an asynchronous diagnosis to the least-loaded replica.

        Jobs are bounded by each replica's job store rather than the
        admission window (they do not hold a connection open), so routing
        considers current in-flight load but never sheds.
        """
        with self._lock:
            if self._closed:
                raise ServeError("replica pool is closed")
            count = len(self._replicas)
            best = self._replicas[self._next % count]
            for offset in range(count):
                replica = self._replicas[(self._next + offset) % count]
                if replica.inflight < best.inflight:
                    best = replica
            self._next = (best.index + 1) % count
        job = best.service.submit_diagnosis(name, inputs, labels, **kwargs)
        return best.index, job

    def find_job(self, job_id: str) -> Tuple[int, object]:
        """Locate a job by id across every replica's store."""
        for replica in self._replicas:
            try:
                return replica.index, replica.service.jobs.get(job_id)
            except ServeError:
                continue
        raise ServeError(f"unknown job {job_id!r}")

    def list_jobs(self, limit: int = 50) -> List[Dict]:
        """Most recent jobs across all replicas, newest first."""
        merged = []
        for replica in self._replicas:
            for job in replica.service.jobs.list(limit=limit):
                record = job.as_dict()
                record["replica"] = replica.index
                merged.append(record)
        merged.sort(key=lambda record: record["submitted_at"], reverse=True)
        return merged[: max(0, int(limit))]

    # -- introspection ---------------------------------------------------------------

    @property
    def replicas(self) -> List[DiagnosisService]:
        return [replica.service for replica in self._replicas]

    def registered_models(self) -> List[str]:
        return self._replicas[0].service.registry.models()

    def records(self) -> List[Dict]:
        return self._replicas[0].service.models()

    def stats(self) -> Dict:
        with self._lock:
            queue_depths = [replica.inflight for replica in self._replicas]
            assigned = [replica.assigned_total for replica in self._replicas]
        return {
            "num_replicas": self.num_replicas,
            "max_queue_per_replica": self.max_queue_per_replica,
            "max_inflight": self.max_inflight,
            "inflight_per_replica": queue_depths,
            "assigned_per_replica": assigned,
            "shed_total": self._m_shed.value,
            "replicas": [replica.service.stats() for replica in self._replicas],
        }

    def metrics_snapshot(self) -> Dict:
        """Pool + per-replica instrument snapshots, with a counter rollup."""
        replica_snapshots = [replica.service.metrics.as_dict() for replica in self._replicas]
        return {
            "pool": self.metrics.as_dict(),
            "replicas": replica_snapshots,
            "aggregate_counters": merge_counters(replica_snapshots),
        }

    # -- lifecycle -------------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for replica in self._replicas:
            replica.service.close()

    def __enter__(self) -> "ReplicaPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ReplicaPool(replicas={self.num_replicas}, "
            f"max_queue_per_replica={self.max_queue_per_replica}, "
            f"max_inflight={self.max_inflight})"
        )
