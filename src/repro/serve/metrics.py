"""Metrics primitives for the serving layer.

A long-lived service is only operable if its internals are visible: how many
requests arrived, how big the coalesced batches actually are, how often the
footprint cache hits, how deep the replica queues run, and how many requests
were shed at admission.  This module provides the three classic instrument
kinds — :class:`Counter`, :class:`Gauge`, :class:`Histogram` — behind a
:class:`MetricsRegistry` that components share and the HTTP layer exposes at
``GET /metrics`` as one JSON document.

Everything is stdlib + threads: instruments are lock-protected, cheap enough
to sit on the hot path (one lock acquisition per observation), and snapshot
to plain JSON-native dicts.  Histograms use fixed cumulative buckets in the
Prometheus style (``le`` upper bounds, ``+Inf`` implicit via ``count``), so a
scraper can derive quantile estimates without the service retaining samples.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "merge_counters",
    "render_registries_text",
]

#: Seconds-scale buckets covering sub-millisecond cache hits through
#: multi-second cold diagnoses.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Count-scale buckets for batch sizes and queue depths.
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


class Counter:
    """A monotonically increasing count (requests served, cases shed, ...)."""

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(f"counter {self.name!r} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def as_dict(self) -> Dict:
        return {"type": "counter", "description": self.description, "value": self.value}

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A value that goes up and down (queue depth, in-flight requests, ...)."""

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def as_dict(self) -> Dict:
        return {"type": "gauge", "description": self.description, "value": self.value}

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Cumulative fixed-bucket histogram (latencies, batch sizes).

    ``buckets`` are strictly increasing upper bounds; an observation lands in
    every bucket whose bound is ``>= value`` (the Prometheus ``le``
    convention), and ``count``/``sum`` track the full stream including values
    above the last bound.
    """

    def __init__(
        self,
        name: str,
        description: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram {name!r} needs strictly increasing, non-empty buckets, got {buckets}"
            )
        self.name = name
        self.description = description
        self.bounds = bounds
        self._bucket_counts = [0] * len(bounds)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            if index < len(self._bucket_counts):
                self._bucket_counts[index] += 1
            self._count += 1
            self._sum += value
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Bucket-resolution estimate of quantile ``q`` in ``[0, 1]``.

        Returns the upper bound of the bucket holding the q-th observation
        (the observed maximum for the overflow tail), which is exactly the
        resolution a fixed-bucket histogram can honestly claim.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = q * self._count
            cumulative = 0
            for bound, bucket_count in zip(self.bounds, self._bucket_counts):
                cumulative += bucket_count
                if cumulative >= rank:
                    return bound
            return self._max if self._max is not None else self.bounds[-1]

    def as_dict(self) -> Dict:
        with self._lock:
            cumulative, buckets = 0, {}
            for bound, bucket_count in zip(self.bounds, self._bucket_counts):
                cumulative += bucket_count
                buckets[str(bound)] = cumulative
            return {
                "type": "histogram",
                "description": self.description,
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "buckets": buckets,
            }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, count={self.count})"


class MetricsRegistry:
    """A named collection of instruments with get-or-create semantics.

    Components ask the registry for their instruments by name; asking twice
    returns the same instrument, so wiring one registry through the service,
    engine, cache, and job layers needs no coordination beyond the shared
    object.  Re-registering a name as a different kind is a configuration
    error (it would silently fork the metric).
    """

    def __init__(self, namespace: str = ""):
        self.namespace = namespace
        self._instruments: "Dict[str, object]" = {}
        self._lock = threading.Lock()

    def _full_name(self, name: str) -> str:
        return f"{self.namespace}.{name}" if self.namespace else name

    def _get_or_create(self, kind, name: str, description: str, **kwargs):
        full = self._full_name(name)
        with self._lock:
            instrument = self._instruments.get(full)
            if instrument is None:
                instrument = kind(full, description, **kwargs)
                self._instruments[full] = instrument
            elif not isinstance(instrument, kind):
                raise ConfigurationError(
                    f"metric {full!r} already registered as {type(instrument).__name__}, "
                    f"not {kind.__name__}"
                )
            return instrument

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, description)

    def histogram(
        self,
        name: str,
        description: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, description, buckets=buckets)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def as_dict(self) -> Dict[str, Dict]:
        """JSON-native snapshot of every instrument, sorted by name."""
        with self._lock:
            instruments = list(self._instruments.items())
        return {name: instrument.as_dict() for name, instrument in sorted(instruments)}

    def render_text(self, labels: Optional[Dict[str, str]] = None) -> str:
        """Prometheus text exposition (version 0.0.4) of this registry.

        Metric names are sanitized to the Prometheus grammar (dots and
        dashes become underscores); optional ``labels`` are attached to
        every sample, which is how multiple registries with overlapping
        names (per-replica registries) coexist in one scrape document.
        """
        return render_registries_text([(self.as_dict(), labels or {})])

    def __repr__(self) -> str:
        return f"MetricsRegistry(namespace={self.namespace!r}, instruments={len(self.names())})"


def merge_counters(snapshots: Iterable[Dict[str, Dict]]) -> Dict[str, float]:
    """Sum counter values across registry snapshots (for fleet-level rollups).

    Gauges and histograms are deliberately not merged — a summed queue-depth
    gauge or a merged latency distribution is easy to misread; per-replica
    snapshots stay authoritative for those.
    """
    totals: Dict[str, float] = {}
    for snapshot in snapshots:
        for name, record in snapshot.items():
            if record.get("type") == "counter":
                totals[name] = totals.get(name, 0.0) + float(record["value"])
    return totals


def _prom_name(name: str) -> str:
    """Sanitize a dotted metric name to the Prometheus grammar."""
    sanitized = "".join(c if (c.isalnum() and c.isascii()) or c in "_:" else "_" for c in name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized or "_"


def _prom_value(value) -> str:
    if value is None:
        return "NaN"
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _prom_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    escaped = []
    for key in sorted(labels):
        value = str(labels[key]).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        escaped.append(f'{_prom_name(key)}="{value}"')
    return "{" + ",".join(escaped) + "}"


def _merge_label_sets(base: str, extra: str) -> str:
    """Combine two pre-rendered label blocks (either may be empty)."""
    if not base:
        return extra
    if not extra:
        return base
    return base[:-1] + "," + extra[1:]


def render_registries_text(snapshots: Sequence[Tuple[Dict[str, Dict], Dict[str, str]]]) -> str:
    """Prometheus text exposition over several registry snapshots.

    ``snapshots`` is a sequence of ``(registry.as_dict(), labels)`` pairs.
    ``# HELP``/``# TYPE`` headers are emitted once per sanitized metric name
    (Prometheus rejects duplicates), with each snapshot's samples
    distinguished by its label set — e.g. ``{replica="0"}`` vs
    ``{replica="1"}`` for the per-replica registries behind one gateway.
    """
    # name -> (type, description, [(labels_text, record), ...]) in first-seen order
    grouped: "Dict[str, Tuple[str, str, List[Tuple[str, Dict]]]]" = {}
    order: List[str] = []
    for snapshot, labels in snapshots:
        labels_text = _prom_labels(dict(labels or {}))
        for raw_name in sorted(snapshot):
            record = snapshot[raw_name]
            kind = str(record.get("type", "untyped"))
            name = _prom_name(raw_name)
            if name not in grouped:
                grouped[name] = (kind, str(record.get("description", "")), [])
                order.append(name)
            grouped[name][2].append((labels_text, record))

    lines: List[str] = []
    for name in order:
        kind, description, samples = grouped[name]
        prom_type = {"counter": "counter", "gauge": "gauge", "histogram": "histogram"}.get(
            kind, "untyped"
        )
        if description:
            escaped = description.replace("\\", "\\\\").replace("\n", "\\n")
            lines.append(f"# HELP {name} {escaped}")
        lines.append(f"# TYPE {name} {prom_type}")
        for labels_text, record in samples:
            if kind == "histogram":
                buckets = record.get("buckets", {})
                count = record.get("count", 0)
                for bound, cumulative in buckets.items():
                    le = _merge_label_sets(labels_text, f'{{le="{bound}"}}')
                    lines.append(f"{name}_bucket{le} {_prom_value(cumulative)}")
                inf = _merge_label_sets(labels_text, '{le="+Inf"}')
                lines.append(f"{name}_bucket{inf} {_prom_value(count)}")
                lines.append(f"{name}_sum{labels_text} {_prom_value(record.get('sum', 0.0))}")
                lines.append(f"{name}_count{labels_text} {_prom_value(count)}")
            else:
                lines.append(f"{name}{labels_text} {_prom_value(record.get('value'))}")
    return "\n".join(lines) + ("\n" if lines else "")
