"""Artifact registry: named, versioned storage of fitted DeepMorph instances.

The registry is a plain directory tree —

::

    <root>/
        <model name>/
            v1/
                artifact.npz    # the fitted DeepMorph (repro.serialize.deepmorph)
                manifest.json   # name, version, creation time, free-form metadata
            v2/
                ...

— so artifacts survive process restarts, can be rsync'd between machines, and
remain inspectable without the library.  Versions are monotonically numbered
(``v1``, ``v2``, ...); ``version=None`` always resolves to the latest.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..core.diagnosis import DeepMorph
from ..exceptions import ArtifactNotFoundError, ServeError
from ..serialize.deepmorph import load_deepmorph, save_deepmorph

__all__ = ["ArtifactRecord", "ArtifactRegistry"]

PathLike = Union[str, Path]

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_VERSION_RE = re.compile(r"^v(\d+)$")

_ARTIFACT_FILE = "artifact.npz"
_MANIFEST_FILE = "manifest.json"
_SEQUENCE_FILE = ".sequence"


@dataclass(frozen=True)
class ArtifactRecord:
    """Manifest entry describing one registered artifact version."""

    name: str
    version: str
    path: Path
    created_at: float
    model_kind: str
    num_classes: int
    metadata: Dict

    @property
    def key(self) -> str:
        """Canonical ``name@version`` identifier used by the serving layer."""
        return f"{self.name}@{self.version}"

    def as_dict(self) -> Dict:
        return {
            "name": self.name,
            "version": self.version,
            "key": self.key,
            "created_at": self.created_at,
            "model_kind": self.model_kind,
            "num_classes": self.num_classes,
            "metadata": dict(self.metadata),
        }


def _validate_name(name: str) -> str:
    if not _NAME_RE.match(name or ""):
        raise ServeError(
            f"invalid artifact name {name!r}; use letters, digits, '.', '_' or '-'"
        )
    return name


class ArtifactRegistry:
    """Persist and resolve fitted DeepMorph instances by ``name`` + ``version``."""

    def __init__(self, root: PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()

    # -- write side ----------------------------------------------------------------

    def register(
        self,
        name: str,
        morph: DeepMorph,
        version: Optional[str] = None,
        metadata: Optional[Dict] = None,
    ) -> ArtifactRecord:
        """Persist a fitted DeepMorph under ``name`` and return its record.

        ``version=None`` allocates the next ``v<n>``; an explicit version must
        be fresh (re-registering an existing version is an error — artifacts
        are immutable once written).

        Safe under concurrent writers — in-process (the monitor's background
        ``partial_fit`` snapshots race user calls) and cross-process (a CLI
        registering against a live service).  The version directory's
        ``mkdir`` is the atomic claim: a collision on an auto-allocated
        version rescans and retries with the next number, a collision on an
        explicit version is the immutability error.  The manifest is the
        commit marker — written last, via an atomic rename, and required by
        the version listing — so readers never resolve a half-written
        version.  Sequence-file updates are atomic renames too, so a
        concurrent reader never sees a torn write.
        """
        _validate_name(name)
        with self._lock:
            if version is not None and not _VERSION_RE.match(version):
                raise ServeError(f"invalid version {version!r}; use 'v<number>'")
            version_dir = self._claim_version_dir(name, version)
            version = version_dir.name
            try:
                save_deepmorph(morph, version_dir / _ARTIFACT_FILE)
                manifest = {
                    "name": name,
                    "version": version,
                    "created_at": time.time(),
                    "model_kind": morph.model.kind,
                    "num_classes": morph.model.num_classes,
                    "metadata": dict(metadata or {}),
                }
                # The manifest write is the publish point: temp + os.replace
                # makes the version appear to readers all-or-nothing, after
                # its artifact bytes are already on disk.
                manifest_path = version_dir / _MANIFEST_FILE
                tmp_path = manifest_path.with_name(
                    f"{_MANIFEST_FILE}.{os.getpid()}.{threading.get_ident()}.tmp"
                )
                with open(tmp_path, "w", encoding="utf-8") as handle:
                    json.dump(manifest, handle, indent=2, sort_keys=True)
                os.replace(tmp_path, manifest_path)
                self._bump_sequence(name, self._version_number(version))
            except Exception:
                shutil.rmtree(version_dir, ignore_errors=True)
                raise
        return self.record(name, version)

    def _claim_version_dir(self, name: str, version: Optional[str]) -> Path:
        """Atomically claim (create) the directory of the version to register.

        ``mkdir`` without ``exist_ok`` is the one filesystem operation that
        both creates and detects a concurrent claim atomically; auto
        allocation retries with a fresh scan on collision, explicit versions
        surface the immutability error.
        """
        if version is not None:
            version_dir = self.root / name / version
            try:
                version_dir.mkdir(parents=True)
            except FileExistsError:
                raise ServeError(
                    f"artifact {name}@{version} already exists; versions are immutable"
                ) from None
            return version_dir
        for _ in range(1000):
            candidate = self.root / name / f"v{self._next_version_number(name)}"
            try:
                candidate.mkdir(parents=True)
            except FileExistsError:
                continue  # another writer claimed this number; rescan
            return candidate
        raise ServeError(f"could not allocate a fresh version for {name!r}")

    def _sequence_path(self, name: str) -> Path:
        return self.root / name / _SEQUENCE_FILE

    def _next_version_number(self, name: str) -> int:
        """Next free version number, never reusing a deleted one.

        Deleted version numbers must stay burned: the serving layer caches
        loaded models and footprints under ``name@version`` keys, so reusing
        a number would silently serve a stale artifact.  A per-model sequence
        file keeps the high-water mark across deletes.

        The scan counts every claimed ``v<n>`` directory — including ones a
        concurrent writer has created but not yet written an artifact into —
        so an allocation retry after an mkdir collision always moves past the
        contested number.
        """
        model_dir = self.root / name
        claimed = (
            (entry.name for entry in model_dir.iterdir()
             if entry.is_dir() and _VERSION_RE.match(entry.name))
            if model_dir.is_dir()
            else ()
        )
        highest = max((self._version_number(v) for v in claimed), default=0)
        sequence_path = self._sequence_path(name)
        if sequence_path.exists():
            try:
                highest = max(highest, int(sequence_path.read_text().strip()))
            except ValueError:
                pass
        return highest + 1

    def _bump_sequence(self, name: str, number: int) -> None:
        """Raise the high-water mark to ``number`` with an atomic rename.

        The new value is written to a temp file and ``os.replace``d over the
        sequence file, so a concurrent reader sees either the old or the new
        content, never a torn write.  Concurrent bumps may race the
        read-compare, but the mark only ever needs to reach the highest
        *registered* number and every registration bumps with its own — the
        on-disk version scan in :meth:`_next_version_number` covers any
        transiently lower mark.
        """
        sequence_path = self._sequence_path(name)
        current = 0
        if sequence_path.exists():
            try:
                current = int(sequence_path.read_text().strip())
            except ValueError:
                pass
        if number > current:
            tmp_path = sequence_path.with_name(
                f"{_SEQUENCE_FILE}.{os.getpid()}.{threading.get_ident()}.tmp"
            )
            tmp_path.write_text(str(number))
            os.replace(tmp_path, sequence_path)

    def delete(self, name: str, version: Optional[str] = None) -> None:
        """Delete one version, or the whole model when ``version`` is ``None``."""
        _validate_name(name)
        with self._lock:
            target = self.root / name if version is None else self.root / name / version
            registered = (
                bool(self._versions_on_disk(name))
                if version is None
                else (target / _ARTIFACT_FILE).exists()
            )
            if not registered:
                label = name if version is None else f"{name}@{version}"
                raise ArtifactNotFoundError(label)
            # Burn the deleted version numbers before removing anything (a
            # whole-model delete takes the sequence file with it otherwise).
            high_water = self._next_version_number(name) - 1
            shutil.rmtree(target)
            if high_water > 0:
                (self.root / name).mkdir(parents=True, exist_ok=True)
                self._bump_sequence(name, high_water)

    # -- read side ------------------------------------------------------------------

    def _versions_on_disk(self, name: str) -> List[str]:
        model_dir = self.root / name
        if not model_dir.is_dir():
            return []
        return [
            entry.name
            for entry in model_dir.iterdir()
            if entry.is_dir() and _VERSION_RE.match(entry.name)
            # The manifest is register()'s last, atomic write: requiring it
            # hides versions that are claimed (or mid-write) but not yet
            # committed, so a concurrent reader never loads a torn artifact.
            and (entry / _MANIFEST_FILE).exists()
        ]

    @staticmethod
    def _version_number(version: str) -> int:
        return int(_VERSION_RE.match(version).group(1))

    def models(self) -> List[str]:
        """Names that have at least one registered version."""
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and self._versions_on_disk(entry.name)
        )

    def versions(self, name: str) -> List[str]:
        """Versions of ``name``, oldest first."""
        _validate_name(name)
        found = self._versions_on_disk(name)
        if not found:
            raise ArtifactNotFoundError(name)
        return sorted(found, key=self._version_number)

    def resolve(self, name: str, version: Optional[str] = None) -> str:
        """Resolve ``version`` (or the latest) to a concrete version string."""
        available = self.versions(name)
        if version is None:
            return available[-1]
        if version not in available:
            raise ArtifactNotFoundError(f"{name}@{version}")
        return version

    def record(self, name: str, version: Optional[str] = None) -> ArtifactRecord:
        """Manifest record of one artifact version (latest when ``None``)."""
        version = self.resolve(name, version)
        version_dir = self.root / name / version
        manifest_path = version_dir / _MANIFEST_FILE
        manifest: Dict = {}
        if manifest_path.exists():
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        return ArtifactRecord(
            name=name,
            version=version,
            path=version_dir / _ARTIFACT_FILE,
            created_at=float(manifest.get("created_at", 0.0)),
            model_kind=str(manifest.get("model_kind", "unknown")),
            num_classes=int(manifest.get("num_classes", 0)),
            metadata=dict(manifest.get("metadata", {})),
        )

    def records(self) -> List[ArtifactRecord]:
        """One record per registered version, over every model."""
        return [
            self.record(name, version)
            for name in self.models()
            for version in self.versions(name)
        ]

    def load(self, name: str, version: Optional[str] = None) -> DeepMorph:
        """Load the fitted DeepMorph for ``name@version`` (latest when ``None``)."""
        record = self.record(name, version)
        return load_deepmorph(record.path)

    def __contains__(self, name: str) -> bool:
        return bool(self._versions_on_disk(name))

    def __repr__(self) -> str:
        return f"ArtifactRegistry(root={str(self.root)!r}, models={self.models()})"
