"""Wire protocol shared by both HTTP front ends.

The thread-per-connection server (:mod:`repro.serve.http`) and the asyncio
gateway (:mod:`repro.serve.gateway`) accept the same ``/diagnose`` and
``/jobs`` body schema and emit the same error documents.  Both halves are
derived from single sources:

* request parsing is :meth:`repro.api.schema.DiagnosisRequest.from_dict` —
  the wire format *is* the library's ``v1`` schema, so a schema change lands
  in both front ends and every client at once;
* error responses come from :func:`error_response`, the one place an
  exception is mapped to a status code, an ``{"error", "error_type"}``
  payload, and transport headers (``Retry-After``).  Clients invert the
  mapping with :func:`repro.exceptions.exception_from_wire`;
* wire encodings come from :mod:`repro.wire`: request bodies are decoded by
  the codec owning their ``Content-Type`` (absent → JSON), ``/diagnose``
  success responses are encoded per ``Accept`` (see :func:`negotiate_codecs`),
  unknown media types on either side are a 415, and error documents are
  always JSON so a client can read a failure whatever codec it asked for.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from ..api.schema import DiagnosisRequest
from ..exceptions import (
    ArtifactNotFoundError,
    DeadlineExceededError,
    MonitorOverflowError,
    PayloadTooLargeError,
    ReproError,
    ServeError,
    ServiceSaturatedError,
    UnsupportedMediaTypeError,
)
from ..resilience import DEADLINE_HEADER, Deadline
from ..wire import (
    codec_for_accept,
    codec_for_content_type,
    negotiate as negotiate_codecs,
    request_digest,
)

__all__ = [
    "parse_json_body",
    "parse_diagnosis_request",
    "diagnosis_args",
    "error_status",
    "error_response",
    "resolve_request_id",
    "resolve_deadline",
    "is_loopback_peer",
    "wants_text_metrics",
    "negotiate_codecs",
    "codec_for_content_type",
    "codec_for_accept",
    "request_digest",
]

Headers = Sequence[Tuple[str, str]]

#: Characters an inbound ``X-Request-ID`` may contain — anything else (or an
#: over-long value) is replaced with a freshly generated id, so a hostile
#: header cannot inject structure into response headers, logs, or traces.
_REQUEST_ID_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)
MAX_REQUEST_ID_LENGTH = 64


def resolve_request_id(supplied: Optional[str], generate) -> str:
    """The request id to use: the client's (when well-formed) or a fresh one."""
    if supplied:
        candidate = supplied.strip()
        if 0 < len(candidate) <= MAX_REQUEST_ID_LENGTH and set(candidate) <= _REQUEST_ID_CHARS:
            return candidate
    return generate()


def resolve_deadline(headers) -> Optional[Deadline]:
    """The request's deadline from ``X-Deadline-Ms``, shared by both front ends.

    ``headers`` is any case-insensitive-get mapping (the gateway's lowercased
    dict, the threading server's ``email.message``-style headers).  Absent or
    malformed values mean "no deadline" — a garbage header must not reject a
    request that never asked for one.
    """
    getter = getattr(headers, "get", None)
    if getter is None:
        return None
    value = getter(DEADLINE_HEADER.lower()) or getter(DEADLINE_HEADER)
    return Deadline.from_header_ms(value)


#: Loopback addresses allowed to reconfigure chaos at runtime.  The debug
#: surface mutates process-global state; only the operator's own host may.
_LOOPBACK_HOSTS = frozenset({"127.0.0.1", "::1", "localhost"})


def is_loopback_peer(peername) -> bool:
    """Whether a socket peername tuple (or host string) is the local host."""
    if peername is None:
        return False
    host = peername[0] if isinstance(peername, (tuple, list)) and peername else peername
    return isinstance(host, str) and host.partition("%")[0] in _LOOPBACK_HOSTS


def wants_text_metrics(query: str, accept: Optional[str]) -> bool:
    """Content negotiation for ``GET /metrics``: Prometheus text vs JSON.

    Text is chosen by ``?format=text`` or an ``Accept`` header naming
    ``text/plain`` (what a Prometheus scraper sends); everything else keeps
    the JSON compatibility payload.
    """
    for piece in query.split("&"):
        name, separator, value = piece.partition("=")
        if separator and name == "format" and value.lower() in ("text", "prometheus"):
            return True
    return accept is not None and "text/plain" in accept.lower()


def parse_json_body(raw: bytes) -> Dict:
    """Decode a request body into the JSON object every POST endpoint expects."""
    if not raw:
        raise ServeError("request body required")
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServeError(f"invalid JSON body: {error}") from error
    if not isinstance(payload, dict):
        raise ServeError("JSON body must be an object")
    return payload


def parse_diagnosis_request(payload: Dict) -> DiagnosisRequest:
    """Validate a diagnosis request body against the ``v1`` schema."""
    return DiagnosisRequest.from_dict(payload)


def diagnosis_args(payload: Dict) -> Tuple[str, list, list, Optional[str], Optional[Dict]]:
    """Deprecated shim: unpack a request body as a plain tuple.

    Kept for callers written against the pre-``repro.api`` protocol; new code
    should use :func:`parse_diagnosis_request` and work with the typed
    :class:`~repro.api.schema.DiagnosisRequest`.
    """
    request = parse_diagnosis_request(payload)
    return request.model, request.inputs, request.labels, request.version, request.metadata


def error_status(error: BaseException) -> int:
    """The HTTP status both front ends use for ``error`` (the single mapping)."""
    if isinstance(error, ServiceSaturatedError):
        return 503
    if isinstance(error, ArtifactNotFoundError):
        return 404
    if isinstance(error, PayloadTooLargeError):
        return 413
    if isinstance(error, UnsupportedMediaTypeError):
        return 415
    if isinstance(error, MonitorOverflowError):
        return 429
    if isinstance(error, DeadlineExceededError):
        return 504
    if isinstance(error, (ServeError, ReproError, ValueError)):
        return 400
    return 500


def error_response(error: BaseException) -> Tuple[int, Dict, Headers]:
    """``(status, payload, extra_headers)`` for one server-side exception.

    The payload carries ``error_type`` so clients can rebuild the typed
    exception; saturation responses carry ``Retry-After``.
    """
    status = error_status(error)
    if isinstance(error, ArtifactNotFoundError):
        message = f"unknown model: {error.args[0] if error.args else error}"
    elif isinstance(
        error,
        (
            ServiceSaturatedError,
            PayloadTooLargeError,
            UnsupportedMediaTypeError,
            DeadlineExceededError,
        ),
    ):
        message = str(error)
    else:
        message = f"{type(error).__name__}: {error}"
    payload = {"error": message, "error_type": type(error).__name__}
    headers: List[Tuple[str, str]] = []
    if isinstance(error, ServiceSaturatedError):
        headers.append(("Retry-After", str(max(1, int(round(error.retry_after))))))
    return status, payload, tuple(headers)
