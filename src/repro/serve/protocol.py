"""Request-schema validation shared by both HTTP front ends.

The thread-per-connection server (:mod:`repro.serve.http`) and the asyncio
gateway (:mod:`repro.serve.gateway`) accept the same ``/diagnose`` and
``/jobs`` body schema.  Keeping the parsing and field validation here — one
implementation, two importers — is what keeps the gateway's endpoint surface
a strict superset of the legacy server's: a schema change lands in both front
ends or in neither.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple

from ..exceptions import ServeError

__all__ = ["parse_json_body", "diagnosis_args"]


def parse_json_body(raw: bytes) -> Dict:
    """Decode a request body into the JSON object every POST endpoint expects."""
    if not raw:
        raise ServeError("request body required")
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServeError(f"invalid JSON body: {error}") from error
    if not isinstance(payload, dict):
        raise ServeError("JSON body must be an object")
    return payload


def diagnosis_args(payload: Dict) -> Tuple[str, list, list, Optional[str], Optional[Dict]]:
    """Validate and unpack a diagnosis request body.

    Returns ``(model, inputs, labels, version, metadata)``; raises
    :class:`~repro.exceptions.ServeError` on any schema violation.
    """
    try:
        name = payload["model"]
        inputs = payload["inputs"]
        labels = payload["labels"]
    except KeyError as error:
        raise ServeError(f"missing required field {error.args[0]!r}") from error
    if not isinstance(name, str):
        raise ServeError("'model' must be a string")
    version = payload.get("version")
    if version is not None and not isinstance(version, str):
        raise ServeError("'version' must be a string when given")
    metadata = payload.get("metadata")
    if metadata is not None and not isinstance(metadata, dict):
        raise ServeError("'metadata' must be an object when given")
    return name, inputs, labels, version, metadata
