"""Asyncio scale-out gateway: event-loop HTTP over a replica pool.

The legacy :class:`~repro.serve.http.DiagnosisHTTPServer` spends a thread per
connection and funnels every request through one service instance.  Under
concurrent load that design pays twice: the interpreter context-switches
across dozens of runnable threads (GIL convoy), and every diagnosis
serializes on a single batching engine.  The gateway replaces both halves:

* **one event loop** accepts connections and parses HTTP/1.1 with a minimal
  reader (`readuntil(b"\\r\\n\\r\\n")` + `readexactly(content_length)`), so
  idle and slow connections cost a coroutine, not a thread;
* **a small executor** (sized to the replica pool, not the connection count)
  runs the blocking diagnosis work, bounding how many threads ever compete
  for the GIL;
* **admission control happens on the loop** before any work is scheduled:
  saturated requests are shed in microseconds with ``503`` +
  ``Retry-After`` instead of queueing without bound;
* **a response cache** sits in front of admission: production monitoring
  re-submits the same labeled cases while a defect is investigated, and a
  repeated ``/diagnose`` body (keyed on its digest, bounded LRU + TTL) is
  answered from memory — bitwise-identically — without spending a replica
  slot or an executor thread.  Responses carry ``X-Response-Cache:
  hit|miss|off`` so clients and tests can observe the path taken; a TTL
  bounds how long a newly-registered "latest" version can be shadowed by a
  cached answer.

Every request, shed, latency, and queue depth is recorded in
:mod:`~repro.serve.metrics` registries and exposed at ``GET /metrics``.

The endpoint surface is a superset of the threading server's (``/health``,
``/models``, ``/stats``, ``/diagnose``, ``/jobs``, ``/jobs/<id>``, plus
``/metrics``), so clients can move between the two front ends unchanged.
"""

from __future__ import annotations

import asyncio
import contextvars
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Sequence, Tuple, Union

from ..exceptions import (
    DeadlineExceededError,
    PayloadTooLargeError,
    ServeError,
    ServiceSaturatedError,
)
from ..obs import (
    SpanContext,
    bind_request_id,
    get_logger,
    get_tracer,
    log_event,
    new_request_id,
    unbind_request_id,
)
from ..resilience import (
    bind_deadline,
    configure_chaos,
    corrupt_bytes,
    current_deadline,
    get_injector,
    unbind_deadline,
)
from ..wire import Codec, get_codec
from .cache import ResponseCache, ResponseEntry
from .metrics import MetricsRegistry, render_registries_text
from .protocol import (
    error_response,
    is_loopback_peer,
    negotiate_codecs,
    parse_json_body,
    request_digest,
    resolve_deadline,
    resolve_request_id,
    wants_text_metrics,
)
from .replicas import ReplicaPool

__all__ = ["ParsedRequest", "parse_request_head", "DiagnosisGateway", "serve_gateway_forever"]

DEFAULT_MAX_BODY_BYTES = 16 * 1024 * 1024
MAX_HEADER_BYTES = 64 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    403: "Forbidden",
    408: "Request Timeout",
    413: "Payload Too Large",
    415: "Unsupported Media Type",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ParsedRequest:
    """The parsed head of one HTTP/1.1 request."""

    __slots__ = ("method", "path", "version", "headers")

    def __init__(self, method: str, path: str, version: str, headers: Dict[str, str]):
        self.method = method
        self.path = path
        self.version = version
        self.headers = headers

    @property
    def content_length(self) -> int:
        raw = self.headers.get("content-length", "0").strip()
        try:
            length = int(raw)
        except ValueError as error:
            raise ServeError(f"invalid Content-Length {raw!r}") from error
        if length < 0:
            raise ServeError(f"invalid Content-Length {raw!r}")
        return length

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.1":
            return connection != "close"
        return connection == "keep-alive"


def parse_request_head(blob: bytes) -> ParsedRequest:
    """Parse a request head (request line + headers, CRLF-terminated).

    Deliberately minimal: no continuation lines, no duplicate-header merging,
    no transfer-encoding — the gateway speaks plain ``Content-Length``
    HTTP/1.1 and rejects anything else with a 400.
    """
    try:
        text = blob.decode("latin-1")
    except UnicodeDecodeError as error:  # pragma: no cover - latin-1 decodes all bytes
        raise ServeError(f"undecodable request head: {error}") from error
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise ServeError(f"malformed request line {lines[0]!r}")
    method, path, version = parts
    if version not in ("HTTP/1.0", "HTTP/1.1"):
        raise ServeError(f"unsupported HTTP version {version!r}")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator or not name or name != name.strip() or name.startswith(("\t", " ")):
            raise ServeError(f"malformed header line {line!r}")
        headers[name.lower()] = value.strip()
    if "transfer-encoding" in headers:
        raise ServeError("Transfer-Encoding is not supported; send Content-Length")
    return ParsedRequest(method.upper(), path, version, headers)


class DiagnosisGateway:
    """The asyncio front end over a :class:`~repro.serve.replicas.ReplicaPool`.

    Mirrors the lifecycle API of the threading server — construct, then
    either :meth:`start` (background thread, for tests/embedding) or
    :meth:`serve_forever` (blocking, for the CLI); ``port=0`` binds an
    ephemeral port readable from :attr:`port` once running.
    """

    def __init__(
        self,
        pool: ReplicaPool,
        host: str = "127.0.0.1",
        port: int = 8421,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        executor_workers: Optional[int] = None,
        idle_timeout: float = 30.0,
        body_timeout: float = 30.0,
        write_timeout: float = 30.0,
        response_cache_size: int = 1024,
        response_cache_ttl: float = 30.0,
        default_codec: Union[str, Codec] = "json",
        metrics: Optional[MetricsRegistry] = None,
        verbose: bool = False,
    ):
        if max_body_bytes < 1:
            raise ServeError(f"max_body_bytes must be >= 1, got {max_body_bytes}")
        self.pool = pool
        self._requested_host = host
        self._requested_port = int(port)
        self.max_body_bytes = int(max_body_bytes)
        self.idle_timeout = float(idle_timeout)
        self.body_timeout = float(body_timeout)
        self.write_timeout = float(write_timeout)
        self.verbose = verbose
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        workers = executor_workers if executor_workers is not None else pool.num_replicas + 1
        if workers < 1:
            raise ServeError(f"executor_workers must be >= 1, got {workers}")
        self._executor_workers = int(workers)
        self._executor: Optional[ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._bound: Optional[Tuple[str, int]] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

        self._m_requests = self.metrics.counter(
            "gateway.requests_total", "HTTP requests received"
        )
        self._m_responses = {
            klass: self.metrics.counter(
                f"gateway.responses_{klass}xx_total", f"HTTP {klass}xx responses sent"
            )
            for klass in (2, 4, 5)
        }
        self._m_shed = self.metrics.counter(
            "gateway.shed_total", "requests rejected with 503 by admission control"
        )
        self._m_deadline_rejected = self.metrics.counter(
            "gateway.deadline_rejected_total",
            "requests refused with 504 because their budget was already spent",
        )
        self._m_request_seconds = self.metrics.histogram(
            "gateway.request_seconds", "request wall time, parse to last byte queued"
        )
        self._m_connections = self.metrics.gauge(
            "gateway.open_connections", "currently open client connections"
        )
        #: Response codec used when the client sends no/any ``Accept``.
        self.default_codec = get_codec(default_codec)
        #: Response cache, keyed on decoded request digest with a per-codec
        #: body-digest fast path (``response_cache_size <= 0`` disables it).
        self.response_cache_ttl = float(response_cache_ttl)
        self._response_cache = ResponseCache(
            int(response_cache_size), self.response_cache_ttl
        )
        self._m_response_hits = self.metrics.counter(
            "gateway.response_cache_hits_total", "diagnose responses served from cache"
        )
        self._m_response_misses = self.metrics.counter(
            "gateway.response_cache_misses_total", "diagnose requests that missed the cache"
        )
        self._log = get_logger("serve.gateway")
        self._started_monotonic = time.monotonic()

    # -- lifecycle -----------------------------------------------------------------

    @property
    def host(self) -> str:
        return self._bound[0] if self._bound else self._requested_host

    @property
    def port(self) -> int:
        return self._bound[1] if self._bound else self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self, timeout: float = 10.0) -> "DiagnosisGateway":
        """Run the event loop on a background thread; returns once bound."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._started.clear()
        self._startup_error = None
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-serve-gateway", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise ServeError("gateway did not start within the timeout")
        if self._startup_error is not None:
            raise ServeError(f"gateway failed to start: {self._startup_error}")
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI entry point)."""
        self._run_loop()

    def shutdown(self, timeout: float = 10.0) -> None:
        loop, stop_event = self._loop, self._stop_event
        if loop is not None and stop_event is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(stop_event.set)
            except RuntimeError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as error:  # noqa: BLE001 - surfaced to start() or re-raised
            self._startup_error = error
            if not self._started.is_set():
                # Failed before binding: start() is still waiting and will
                # surface the error to its caller.
                self._started.set()
            else:
                # Crashed after startup: die loudly (threading's excepthook
                # prints the traceback) instead of exiting silently while
                # clients get connection-refused.
                raise

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self._executor_workers, thread_name_prefix="repro-gateway-worker"
        )
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._requested_host,
            self._requested_port,
            limit=MAX_HEADER_BYTES,
        )
        sockname = self._server.sockets[0].getsockname()
        self._bound = (sockname[0], int(sockname[1]))
        self._started.set()
        try:
            async with self._server:
                await self._stop_event.wait()
        finally:
            self._executor.shutdown(wait=False)
            self._bound = None

    # -- connection handling --------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._m_connections.inc()
        try:
            while True:
                try:
                    head = await asyncio.wait_for(
                        reader.readuntil(b"\r\n\r\n"), timeout=self.idle_timeout
                    )
                except (asyncio.IncompleteReadError, ConnectionError, asyncio.TimeoutError):
                    break
                except (asyncio.LimitOverrunError, ValueError):
                    await self._respond(writer, 431, {"error": "request head too large"}, False)
                    break
                keep_alive = await self._handle_request(head, reader, writer)
                if not keep_alive:
                    break
        except ConnectionError:
            pass
        finally:
            self._m_connections.dec()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.TimeoutError):
                pass

    async def _handle_request(
        self, head: bytes, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Parse, dispatch, respond.  Returns whether to keep the connection."""
        start = time.perf_counter()
        self._m_requests.inc()
        try:
            request = parse_request_head(head)
            length = request.content_length
        except ServeError as error:
            await self._respond(writer, 400, {"error": str(error)}, False)
            return False

        # Request identity: the client's well-formed X-Request-ID or a fresh
        # one, bound to this task's context (it stamps spans and log lines,
        # tracing enabled or not) and echoed on every response from here on.
        request_id = resolve_request_id(request.headers.get("x-request-id"), new_request_id)
        token = bind_request_id(request_id)
        # The client's remaining budget rides the task's context from here:
        # every downstream stage (admission, executor hop, batching queue)
        # sees it without threading a parameter through.
        deadline_token = bind_deadline(resolve_deadline(request.headers))
        try:
            tracer = get_tracer()
            root = tracer.span(
                "gateway.request",
                {"method": request.method, "path": request.path, "request_id": request_id},
                # A client-sent X-Trace-Parent stitches this server-side tree
                # under the caller's span, making one cross-process trace.
                parent=SpanContext.from_header_value(request.headers.get("x-trace-parent")),
                kind="request",
            )
            with root:
                status, payload, keep_alive, sent = await self._handle_parsed(
                    request, length, reader, writer, request_id
                )
                root.set_attribute("status", status)
            duration = time.perf_counter() - start
            self._m_request_seconds.observe(duration)
            log_event(
                self._log,
                "request",
                method=request.method,
                path=request.path,
                status=status,
                duration_seconds=round(duration, 6),
            )
            if self.verbose:
                print(f"gateway: {request.method} {request.path} -> {status}")
            return keep_alive and sent
        finally:
            unbind_deadline(deadline_token)
            unbind_request_id(token)

    async def _handle_parsed(
        self,
        request: ParsedRequest,
        length: int,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        request_id: str,
    ) -> Tuple[int, Union[Dict, bytes], bool, bool]:
        """Body read + dispatch + respond, inside the request's root span.

        Returns ``(status, payload, keep_alive, sent)``.
        """
        rid_header = (("X-Request-ID", request_id),)
        if length > self.max_body_bytes:
            # The body is never read, so the stream is desynchronized: close.
            # Mapped through the shared protocol table so the payload carries
            # error_type exactly like the threading front end's 413.
            status, payload, extra = error_response(
                PayloadTooLargeError(
                    f"request body of {length} bytes exceeds {self.max_body_bytes}"
                )
            )
            payload["request_id"] = request_id
            sent = await self._respond(writer, status, payload, False, tuple(extra) + rid_header)
            return status, payload, False, sent
        body = b""
        if length:
            try:
                with get_tracer().span("gateway.read_body", {"content_length": length}):
                    body = await asyncio.wait_for(
                        reader.readexactly(length), timeout=self.body_timeout
                    )
            except (asyncio.IncompleteReadError, ConnectionError):
                return 0, {}, False, False
            except asyncio.TimeoutError:
                payload = {"error": "timed out reading body", "request_id": request_id}
                sent = await self._respond(writer, 408, payload, False, rid_header)
                return 408, payload, False, sent

        injector = get_injector()
        if injector.enabled:
            plan = injector.planned("gateway.read_body")
            if plan is not None:
                # planned() not inject(): a blocking sleep here would stall
                # every connection on the loop, not just this request.
                if plan.mode in ("delay", "hang"):
                    await asyncio.sleep(plan.delay_seconds)
                elif plan.mode == "drop":
                    return 0, {}, False, False
                elif plan.mode == "corrupt":
                    body = corrupt_bytes(body)
                elif plan.mode == "error":
                    status, payload, extra = error_response(plan.build_error())
                    payload["request_id"] = request_id
                    sent = await self._respond(
                        writer, status, payload, False, tuple(extra) + rid_header
                    )
                    return status, payload, False, sent

        # Admission gate for the deadline: a budget that is already spent is
        # refused here — after the body read keeps the connection in sync, but
        # before any cache, admission, or executor work happens.
        deadline = current_deadline()
        if deadline is not None and deadline.expired() and request.method == "POST":
            self._m_deadline_rejected.inc()
            status, payload, extra = error_response(
                DeadlineExceededError("deadline expired before admission")
            )
            payload["request_id"] = request_id
            keep_alive = request.keep_alive
            sent = await self._respond(
                writer, status, payload, keep_alive, tuple(extra) + rid_header
            )
            return status, payload, keep_alive, sent

        status, payload, extra = await self._dispatch(
            request, body, writer.get_extra_info("peername")
        )
        if status >= 400 and isinstance(payload, dict):
            payload.setdefault("request_id", request_id)
        keep_alive = request.keep_alive and status < 500
        with get_tracer().span("gateway.respond"):
            sent = await self._respond(
                writer, status, payload, keep_alive, tuple(extra) + rid_header
            )
        return status, payload, keep_alive, sent

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Union[Dict, bytes],
        keep_alive: bool,
        extra_headers: Sequence[Tuple[str, str]] = (),
    ) -> bool:
        body = payload if isinstance(payload, bytes) else json.dumps(payload).encode("utf-8")
        # An extra Content-Type header (the Prometheus text endpoint) replaces
        # the JSON default rather than duplicating it.
        has_content_type = any(name.lower() == "content-type" for name, _ in extra_headers)
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        if not has_content_type:
            lines.insert(1, "Content-Type: application/json")
        lines.extend(f"{name}: {value}" for name, value in extra_headers)
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        self._m_responses.get(status // 100, self._m_responses[5]).inc()
        try:
            writer.write(head + body)
            # Bounded drain: a peer that stops reading (slow loris on the
            # response path) costs at most write_timeout, not a pinned
            # connection with a full kernel buffer forever.
            await asyncio.wait_for(writer.drain(), timeout=self.write_timeout)
        except (ConnectionError, asyncio.TimeoutError):
            return False
        return True

    # -- routing --------------------------------------------------------------------

    async def _dispatch(
        self, request: ParsedRequest, body: bytes, peer: object = None
    ) -> Tuple[int, Union[Dict, bytes], Sequence[Tuple[str, str]]]:
        raw_path, _, query = request.path.partition("?")
        path = raw_path.rstrip("/") or "/"
        try:
            if request.method == "GET":
                return await self._dispatch_get(path, query, request.headers)
            if request.method == "POST":
                return await self._dispatch_post(path, body, request.headers, peer)
            return 405, {"error": f"method {request.method} not allowed"}, ()
        except Exception as error:  # noqa: BLE001 - mapped to a status, keep serving
            if isinstance(error, ServiceSaturatedError):
                self._m_shed.inc()
            elif isinstance(error, DeadlineExceededError):
                self._m_deadline_rejected.inc()
            return error_response(error)

    async def _dispatch_get(
        self, path: str, query: str, headers: Dict[str, str]
    ) -> Tuple[int, Union[Dict, bytes], Sequence[Tuple[str, str]]]:
        if path == "/health":
            models = await self._run_blocking(self.pool.registered_models)
            return 200, {"status": "ok", "models": models}, ()
        if path == "/healthz":
            # Answered on the loop from in-memory health state (no executor
            # hop, cannot be shed): "ok" / "degraded" / "unavailable", with
            # only a fully-quarantined pool failing the probe's status code.
            payload = self._healthz_payload()
            return (503 if payload["status"] == "unavailable" else 200), payload, ()
        if path == "/debug/traces":
            return 200, get_tracer().debug_payload(), ()
        if path == "/debug/chaos":
            return 200, get_injector().stats(), ()
        if path == "/models":
            records = await self._run_blocking(self.pool.records)
            return 200, {"models": records}, ()
        if path == "/stats":
            return 200, self._stats_payload(), ()
        if path == "/metrics":
            if wants_text_metrics(query, headers.get("accept")):
                text = self._metrics_text()
                return 200, text.encode("utf-8"), (
                    ("Content-Type", "text/plain; version=0.0.4; charset=utf-8"),
                )
            return 200, self._metrics_payload(), ()
        if path == "/monitor":
            refresh = any(
                piece in ("refresh=1", "refresh=true") for piece in query.split("&")
            )
            # Refresh evaluates drift windows (a batched kernel per model) —
            # executor work, never loop work.
            snapshot = await self._run_blocking(
                lambda: self.pool.monitor_snapshot(refresh=refresh)
            )
            return 200, snapshot, ()
        if path == "/jobs":
            return 200, {"jobs": self.pool.list_jobs()}, ()
        if path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            try:
                replica_index, job = self.pool.find_job(job_id)
            except ServeError:
                return 404, {"error": f"unknown job {job_id!r}"}, ()
            record = job.as_dict()
            record["replica"] = replica_index
            return 200, record, ()
        return 404, {"error": f"unknown path {path!r}"}, ()

    async def _dispatch_post(
        self, path: str, body: bytes, headers: Dict[str, str], peer: object = None
    ) -> Tuple[int, Union[Dict, bytes], Sequence[Tuple[str, str]]]:
        if path == "/debug/chaos":
            # Runtime chaos control mutates process-global state: only the
            # operator's own host may, and never through a proxy.
            if not is_loopback_peer(peer):
                return 403, {"error": "chaos control is loopback-only"}, ()
            injector = configure_chaos(parse_json_body(body))
            return 200, injector.stats(), ()
        if path == "/diagnose":
            # Codec negotiation first: an unknown Content-Type/Accept is a 415
            # before any cache or admission work (negotiate_codecs raises).
            request_codec, response_codec = negotiate_codecs(
                headers, default=self.default_codec
            )
            # The response cache answers byte-identical repeats on the loop
            # itself — no admission slot, no executor hop, no recomputation.
            tracer = get_tracer()
            with tracer.span("gateway.cache_lookup") as cache_span:
                body_key, entry = self._response_cache.lookup_body(
                    request_codec.content_type, body
                )
                cache_span.set_attribute("hit", entry is not None)
            if entry is not None:
                self._m_response_hits.inc()
                return 200, entry.encoded(response_codec), (
                    ("X-Response-Cache", "hit"),
                    ("Content-Type", response_codec.content_type),
                )
            # Admission happens here on the loop — a saturated pool sheds the
            # request before any executor slot or body decoding is spent on it.
            # (pool.acquire opens its own "replicas.route" span.)
            lease = self.pool.acquire()
            with tracer.span("gateway.dispatch", {"body_bytes": len(body)}):
                status, payload, extra, cache_state = await self._run_blocking(
                    self._diagnose_blocking, lease, body, request_codec, body_key
                )
            if status != 200:
                return status, payload, extra
            if cache_state == "hit":
                # Canonical-level hit: same decoded request first seen under a
                # different wire form (other codec, or other JSON spelling).
                self._m_response_hits.inc()
            elif cache_state == "miss":
                self._m_response_misses.inc()
            encoded = (
                payload.encoded(response_codec)
                if isinstance(payload, ResponseEntry)
                else response_codec.encode_report(payload)
            )
            return 200, encoded, (
                ("X-Response-Cache", cache_state),
                ("Content-Type", response_codec.content_type),
            )
        if path == "/jobs":
            request_codec, _ = negotiate_codecs(headers, default=self.default_codec)
            return await self._run_blocking(self._submit_job_blocking, body, request_codec)
        return 404, {"error": f"unknown path {path!r}"}, ()

    async def _run_blocking(self, fn, *args):
        # run_in_executor does NOT propagate contextvars to the worker thread;
        # carrying a copy over keeps the active span and request id visible to
        # the blocking diagnosis path (service spans, structured logs).
        context = contextvars.copy_context()
        return await self._loop.run_in_executor(self._executor, context.run, fn, *args)

    def _diagnose_blocking(
        self, lease, body: bytes, codec: Codec, body_key: Optional[str]
    ) -> Tuple[int, Union[Dict, ResponseEntry], Sequence[Tuple[str, str]], str]:
        """Decode, consult the canonical cache level, diagnose, admit.

        Returns ``(status, payload, extra headers, cache state)``; the payload
        is a :class:`~repro.serve.cache.ResponseEntry` when the cache is on
        (so the loop side reuses its memoized encodings) and a plain document
        when it is off.
        """
        started = time.perf_counter()
        try:
            injector = get_injector()
            if injector.enabled and injector.inject("codec.decode") == "corrupt":
                body = corrupt_bytes(body)
            request = codec.decode_request(body)
            canonical_key: Optional[str] = None
            if body_key is not None:
                canonical_key = request_digest(request)
                entry = self._response_cache.lookup_canonical(canonical_key)
                if entry is not None:
                    # Same decoded request, first seen under another wire
                    # form: link this body for the loop-side fast path and
                    # answer from the shared entry.
                    self._response_cache.link(body_key, canonical_key)
                    lease.release(latency_seconds=time.perf_counter() - started)
                    return 200, entry, (), "hit"
            report = lease.service.diagnose_dict(
                request.model,
                request.inputs,
                request.labels,
                version=request.version,
                metadata=request.metadata,
            )
            lease.release(latency_seconds=time.perf_counter() - started)
            if canonical_key is not None:
                entry = self._response_cache.store(body_key, canonical_key, report)
                return 200, entry, (), "miss"
            return 200, report, (), "off"
        except Exception as error:  # noqa: BLE001 - mapped to a status, keep serving
            # The outcome feeds replica health: infrastructure faults count
            # toward ejection, a client's bad request does not (classified
            # inside the pool).
            lease.release(error=error, latency_seconds=time.perf_counter() - started)
            if isinstance(error, DeadlineExceededError):
                self._m_deadline_rejected.inc()
            status, payload, extra = error_response(error)
            return status, payload, extra, "error"

    def _submit_job_blocking(
        self, body: bytes, codec: Codec
    ) -> Tuple[int, Dict, Sequence[Tuple[str, str]]]:
        try:
            request = codec.decode_request(body)
            replica_index, job = self.pool.submit_job(
                request.model,
                request.inputs,
                request.labels,
                version=request.version,
                metadata=request.metadata,
            )
            payload = {"job_id": job.job_id, "status": job.status, "replica": replica_index}
            return 202, payload, ()
        except Exception as error:  # noqa: BLE001 - mapped to a status, keep serving
            return error_response(error)

    # -- payload builders -------------------------------------------------------------

    def _stats_payload(self) -> Dict:
        return {
            "gateway": {
                "url": self.url,
                "executor_workers": self._executor_workers,
                "max_body_bytes": self.max_body_bytes,
                "requests_total": self._m_requests.value,
                "shed_total": self._m_shed.value,
                "open_connections": self._m_connections.value,
                "response_cache": {
                    "maxsize": self._response_cache.maxsize,
                    "ttl_seconds": self.response_cache_ttl,
                    "size": len(self._response_cache),
                    "hits": self._m_response_hits.value,
                    "misses": self._m_response_misses.value,
                },
            },
            "pool": self.pool.stats(),
        }

    def _metrics_payload(self) -> Dict:
        snapshot = self.pool.metrics_snapshot()
        snapshot["gateway"] = self.metrics.as_dict()
        return snapshot

    def _metrics_text(self) -> str:
        """Prometheus text exposition: gateway + pool + per-replica registries.

        Replica registries share metric names, so each snapshot is labelled
        (``component``, plus ``replica`` for the shards) instead of being
        merged — HELP/TYPE are emitted once per name, samples per label set.
        """
        snapshot = self.pool.metrics_snapshot()
        pairs = [
            (self.metrics.as_dict(), {"component": "gateway"}),
            (snapshot["pool"], {"component": "pool"}),
        ]
        pairs.extend(
            (replica_snapshot, {"component": "replica", "replica": str(index)})
            for index, replica_snapshot in enumerate(snapshot["replicas"])
        )
        return render_registries_text(pairs)

    def _healthz_payload(self) -> Dict:
        health = self.pool.health_snapshot()
        return {
            "status": health["status"],
            "uptime_seconds": round(time.monotonic() - self._started_monotonic, 3),
            "tracing": get_tracer().enabled,
            "replicas": self.pool.num_replicas,
            "quarantined": health["quarantined"],
            "replica_health": health["replicas"],
        }

    def __enter__(self) -> "DiagnosisGateway":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return f"DiagnosisGateway(url={self.url}, pool={self.pool!r})"


def serve_gateway_forever(
    pool: ReplicaPool,
    host: str = "127.0.0.1",
    port: int = 8421,
    verbose: bool = False,
    **gateway_kwargs,
) -> None:
    """Convenience wrapper: bind, announce, and serve until interrupted."""
    gateway = DiagnosisGateway(pool, host=host, port=port, verbose=verbose, **gateway_kwargs)
    gateway.start()
    print(
        f"repro-serve gateway listening on {gateway.url} "
        f"({pool.num_replicas} replicas, max {pool.max_inflight} in flight; "
        f"models: {', '.join(pool.registered_models()) or 'none registered'})"
    )
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        gateway.shutdown()
        pool.shutdown()
