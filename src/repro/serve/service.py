"""The diagnosis service: a long-lived, batched, cached front over DeepMorph.

:class:`DiagnosisService` owns

* an :class:`~repro.serve.registry.ArtifactRegistry` of fitted DeepMorph
  artifacts (with an in-process LRU of loaded instances, including each
  model's precomputed diagnosis context — pattern overlap, feature quality,
  training inconsistency — which are fixed once fitted and therefore must not
  be recomputed per request),
* a :class:`~repro.serve.batching.BatchingEngine` that coalesces concurrent
  requests into vectorized footprint extraction over one forward pass,
* a :class:`~repro.serve.cache.FootprintCache` so repeated production cases
  are never re-extracted, and
* a :class:`~repro.serve.jobs.WorkerPool` for asynchronous multi-model
  diagnosis with polled job status.

A served diagnosis matches calling ``DeepMorph.diagnose_dataset`` on the same
data: extraction is deterministic for a given batch composition, the
misclassification filter is the same, and the per-model context values are
the very ones the facade recomputes on every call.  Extraction runs in the
model's inference dtype (float32 by default), so coalescing requests into
different batch compositions can move probe distributions at float32
resolution (~1e-7); construct the service with ``inference_dtype="float64"``
for full-precision parity with offline runs.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import TimeoutError as _FuturesTimeoutError
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..api.schema import validate_arrays
from ..core.classifier import DefectReport
from ..core.diagnosis import DeepMorph
from ..core.footprint import FootprintExtractor
from ..core.specifics import compute_specifics_batch
from ..exceptions import NoFaultyCasesError, ServeError
from ..monitor import DriftThresholds, MonitorSink, PatternUpdater
from ..nn.dtype import resolve_dtype
from ..obs import span as obs_span
from ..resilience import check_deadline, get_injector, remaining_budget
from .batching import BatchingEngine
from .cache import FootprintCache
from .jobs import Job, JobStore, WorkerPool
from .metrics import MetricsRegistry
from .registry import ArtifactRegistry

__all__ = ["LoadedModel", "DiagnosisService"]


@dataclass
class LoadedModel:
    """A registry artifact resident in memory, with its per-model constants."""

    key: str
    morph: DeepMorph
    extractor: FootprintExtractor
    pattern_overlap: float
    feature_quality: float
    training_inconsistency: float

    @property
    def num_classes(self) -> int:
        return self.morph.model.num_classes


class DiagnosisService:
    """Serve batched, cached DeepMorph diagnoses for registered models.

    Parameters
    ----------
    registry:
        The artifact registry (or a path, which is wrapped in one).
    max_batch_cases, batch_wait_seconds:
        Coalescing knobs of the batching engine.
    cache_size:
        Capacity (in cases) of the footprint cache; ``0`` disables caching.
    num_workers:
        Worker threads for asynchronous jobs.
    max_loaded_models:
        How many fitted DeepMorph instances are kept in memory at once.
    extraction_batch_size:
        Chunk size of the underlying instrumented forward passes.
    request_timeout:
        Default seconds a synchronous diagnosis waits on the engine.
    inference_dtype:
        When set (``"float32"`` / ``"float64"``), overrides the extraction
        precision of every model this service loads; ``None`` keeps each
        artifact's own policy (float32 by default — see
        :class:`~repro.core.SoftmaxInstrumentedModel`).  Operators who need
        bit-identical parity with offline float64 runs pass ``"float64"``.
    metrics:
        Optional shared :class:`~repro.serve.metrics.MetricsRegistry`; by
        default the service creates its own.  The registry is threaded through
        the batching engine, footprint cache, and worker pool, and exposed at
        ``GET /metrics`` by the HTTP front ends.
    monitor:
        When ``True``, a :class:`~repro.monitor.MonitorSink` watches the
        served traffic: freshly extracted cases feed a per-model drift window
        from the batching drain, every labeled request feeds the
        misclassification counters, and drift gauges / alert states appear on
        ``GET /metrics`` and ``GET /monitor``.
    monitor_window / monitor_max_age_seconds:
        Sliding-window bounds of the drift window (cases / seconds).
    drift_threshold:
        Warn threshold on the EWMA-smoothed normalized drift score; the
        critical threshold is twice it.
    monitor_update_cases:
        When > 0, labeled traffic is buffered per model and every time the
        buffer reaches this many cases a ``PatternLibrary.partial_fit``
        update is applied on a worker thread and snapshotted into the
        registry as a new artifact version (0 disables updates).
    """

    def __init__(
        self,
        registry,
        max_batch_cases: int = 512,
        batch_wait_seconds: float = 0.005,
        cache_size: int = 4096,
        num_workers: int = 2,
        max_loaded_models: int = 8,
        extraction_batch_size: int = 128,
        request_timeout: float = 120.0,
        inference_dtype: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
        monitor: bool = False,
        monitor_window: int = 2048,
        monitor_max_age_seconds: Optional[float] = 600.0,
        drift_threshold: float = 2.0,
        monitor_update_cases: int = 0,
    ):
        if max_loaded_models < 1:
            raise ServeError(f"max_loaded_models must be >= 1, got {max_loaded_models}")
        self.registry = registry if isinstance(registry, ArtifactRegistry) else ArtifactRegistry(registry)
        self.inference_dtype = (
            resolve_dtype(inference_dtype) if inference_dtype is not None else None
        )
        self.extraction_batch_size = int(extraction_batch_size)
        self.request_timeout = float(request_timeout)
        self.max_loaded_models = int(max_loaded_models)
        self._entries: "OrderedDict[str, LoadedModel]" = OrderedDict()
        self._entries_lock = threading.Lock()

        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._m_diagnoses = self.metrics.counter(
            "service.diagnoses_total", "synchronous diagnoses served"
        )
        self._m_diagnosis_seconds = self.metrics.histogram(
            "service.diagnosis_seconds", "end-to-end synchronous diagnosis wall time"
        )
        self._m_errors = self.metrics.counter(
            "service.errors_total", "diagnoses that raised an error"
        )
        self.cache = (
            FootprintCache(cache_size, metrics=self.metrics) if cache_size > 0 else None
        )
        self.monitor: Optional[MonitorSink] = None
        if monitor:
            updater_factory = (
                self._monitor_updater if monitor_update_cases > 0 else None
            )
            self._monitor_update_cases = int(monitor_update_cases)
            self.monitor = MonitorSink(
                library_resolver=lambda key: self._entry(key).morph.patterns,
                window_cases=monitor_window,
                window_max_age_seconds=monitor_max_age_seconds,
                thresholds=DriftThresholds(
                    warn=float(drift_threshold), critical=2.0 * float(drift_threshold)
                ),
                updater_factory=updater_factory,
                update_runner=self._run_monitor_update,
                metrics=self.metrics,
            )
        self.engine = BatchingEngine(
            extract_fn=self._extract_raw,
            cache=self.cache,
            max_batch_cases=max_batch_cases,
            max_wait_seconds=batch_wait_seconds,
            metrics=self.metrics,
            monitor=self.monitor,
        ).start()
        self.jobs = JobStore()
        self.pool = WorkerPool(num_workers=num_workers, store=self.jobs, metrics=self.metrics)
        self._closed = False

    # -- model residency ----------------------------------------------------------

    def resolve_key(self, name: str, version: Optional[str] = None) -> str:
        """Resolve ``(name, version-or-latest)`` to a canonical ``name@version`` key.

        A pinned version that is already resident skips the registry's disk
        lookup entirely (versions are immutable, so residency proves
        existence); only "latest" requests re-consult the filesystem, since
        another process may have registered a newer version.
        """
        if version is not None:
            key = f"{name}@{version}"
            with self._entries_lock:
                if key in self._entries:
                    return key
        return f"{name}@{self.registry.resolve(name, version)}"

    def _entry(self, key: str) -> LoadedModel:
        """Return the loaded model for ``key``, loading (and evicting) as needed."""
        with self._entries_lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return self._entries[key]
        name, _, version = key.partition("@")
        morph = self.registry.load(name, version)
        if self.inference_dtype is not None:
            morph.instrumented.inference_dtype = self.inference_dtype
        entry = LoadedModel(
            key=key,
            morph=morph,
            extractor=FootprintExtractor(morph.instrumented, batch_size=self.extraction_batch_size),
            # Fixed once fitted; DeepMorph.diagnose recomputes them per call,
            # which is exactly the per-request overhead a service must not pay.
            pattern_overlap=morph.patterns.pattern_overlap(),
            feature_quality=morph.patterns.feature_quality(),
            training_inconsistency=morph.patterns.training_inconsistency(),
        )
        with self._entries_lock:
            if key not in self._entries:
                self._entries[key] = entry
                while len(self._entries) > self.max_loaded_models:
                    self._entries.popitem(last=False)
            self._entries.move_to_end(key)
            return self._entries[key]

    def loaded_models(self) -> List[str]:
        with self._entries_lock:
            return list(self._entries)

    def evict(self, name: str, version: Optional[str] = None) -> List[str]:
        """Drop resident copies (and cached footprints) of a model.

        Must accompany ``registry.delete`` on a live service — residency
        otherwise keeps serving the deleted artifact (see :meth:`unregister`
        for the combined operation).  ``version=None`` evicts every resident
        version of ``name``.  Returns the evicted keys.
        """
        with self._entries_lock:
            doomed = [
                key for key in self._entries
                if key == f"{name}@{version}" or (version is None and key.partition("@")[0] == name)
            ]
            for key in doomed:
                del self._entries[key]
        if self.cache is not None:
            for key in doomed:
                self.cache.invalidate_model(key)
        return doomed

    def unregister(self, name: str, version: Optional[str] = None) -> None:
        """Delete from the registry AND evict resident copies, atomically enough."""
        self.registry.delete(name, version)
        self.evict(name, version)

    # -- extraction callback (runs on the engine thread) ---------------------------

    def _extract_raw(
        self, model_key: str, input_groups: Sequence[np.ndarray]
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        return self._entry(model_key).extractor.extract_coalesced(input_groups)

    # -- monitoring ----------------------------------------------------------------

    def _monitor_updater(self, model_key: str) -> PatternUpdater:
        """A pattern updater for one served model (its own fresh artifact copy).

        The updater never mutates the library the service answers requests
        with — it loads its own instance and publishes updates only by
        registering new immutable versions, which "latest" requests pick up
        on their next resolve.  Rolling back after a bad update is therefore
        a one-line ``registry.resolve``/pinned-version request away.
        """
        name, _, version = model_key.partition("@")
        morph = self.registry.load(name, version or None)
        if self.inference_dtype is not None:
            morph.instrumented.inference_dtype = self.inference_dtype
        return PatternUpdater(
            morph,
            name,
            registry=self.registry,
            min_cases=self._monitor_update_cases,
        )

    def _run_monitor_update(self, fn) -> None:
        """Run a pattern update on the worker pool (visible under ``/jobs``)."""
        try:
            self.pool.submit(
                lambda: fn() or {"kind": "monitor_update"}, kind="monitor_update"
            )
        except ServeError:
            # Pool shut down mid-flight: drop the update, never the request.
            pass

    def monitor_payload(self, refresh: bool = False) -> Dict:
        """The ``GET /monitor`` document (drift, windows, alerts, updates)."""
        if self.monitor is None:
            return MonitorSink.disabled_payload()
        if refresh:
            self.monitor.refresh()
        return self.monitor.payload()

    # -- diagnosis ----------------------------------------------------------------

    #: Shared with every repro.api backend (and thus the wire protocol), so
    #: the accepted shapes and rejection messages cannot drift between the
    #: embedded and served paths.
    _validate_request = staticmethod(validate_arrays)

    def diagnose(
        self,
        name: str,
        inputs,
        labels,
        version: Optional[str] = None,
        metadata: Optional[Dict] = None,
        timeout: Optional[float] = None,
    ) -> DefectReport:
        """Diagnose a labeled production batch against a registered model.

        The batch plays the role of the production data of
        ``DeepMorph.diagnose_dataset``: the service finds the misclassified
        cases (via the extracted footprints' own predictions) and aggregates
        their defect evidence into a :class:`DefectReport`.
        """
        start = time.perf_counter()
        with obs_span("service.diagnose", {"model": str(name)}):
            try:
                report = self._diagnose_inner(
                    name, inputs, labels, version=version, metadata=metadata, timeout=timeout
                )
            except Exception:
                self._m_errors.inc()
                raise
        self._m_diagnoses.inc()
        self._m_diagnosis_seconds.observe(time.perf_counter() - start)
        return report

    def _diagnose_inner(
        self,
        name: str,
        inputs,
        labels,
        version: Optional[str] = None,
        metadata: Optional[Dict] = None,
        timeout: Optional[float] = None,
    ) -> DefectReport:
        if self._closed:
            raise ServeError("service is closed")
        injector = get_injector()
        if injector.enabled:
            injector.inject("replica.dispatch")
        # A request whose deadline already lapsed must cost nothing past this
        # point — and a live deadline caps how long we wait on the engine.
        check_deadline("replica dispatch")
        inputs, labels = self._validate_request(inputs, labels)
        key = self.resolve_key(name, version)
        entry = self._entry(key)

        with obs_span(
            "service.extract", {"model_key": key, "num_cases": int(inputs.shape[0])}
        ):
            try:
                trajectories, final_probs = self.engine.extract(
                    key,
                    inputs,
                    timeout=remaining_budget(
                        timeout if timeout is not None else self.request_timeout
                    ),
                )
            except (TimeoutError, _FuturesTimeoutError):
                # The wait was capped by the request's deadline: surface the
                # typed 504, not a generic engine timeout.
                check_deadline("extraction wait")
                raise
        if self.monitor is not None:
            # Labeled tap: misclassification counters + partial_fit buffers.
            # (The drift window is fed by the engine drain with freshly
            # extracted rows only, so cache hits are not double counted.)
            self.monitor.observe_labeled(key, trajectories, final_probs, labels)
        with obs_span("service.footprints") as fp_span:
            footprints = entry.extractor.from_arrays(trajectories, final_probs, labels)
            faulty = [fp for fp in footprints if fp.is_misclassified]
            fp_span.set_attribute("num_faulty", len(faulty))
        if not faulty:
            raise NoFaultyCasesError(
                "none of the supplied cases is misclassified by the model; nothing to diagnose"
            )
        # Batched diagnosis core: one stacked specifics computation for the
        # whole coalesced batch instead of a per-case Python loop.
        with obs_span("service.specifics", {"num_faulty": len(faulty)}):
            specifics = compute_specifics_batch(faulty, entry.morph.patterns)
        with obs_span("service.classify"):
            context = entry.morph.case_classifier.build_context(
                specifics,
                num_classes=entry.num_classes,
                pattern_overlap=entry.pattern_overlap,
                feature_quality=entry.feature_quality,
                training_inconsistency=entry.training_inconsistency,
            )
            meta = {
                "num_production_cases": int(inputs.shape[0]),
                "model": name,
                "version": key.partition("@")[2],
            }
            meta.update(metadata or {})
            return entry.morph.case_classifier.aggregate(specifics, context=context, metadata=meta)

    def diagnose_dict(self, name: str, inputs, labels, **kwargs) -> Dict:
        """JSON-friendly variant of :meth:`diagnose` (used by HTTP and jobs).

        The returned document is the ``v1`` schema of
        :class:`repro.api.schema.DiagnosisReport` (``DefectReport.as_dict``
        delegates to it), so the wire format and the library format are one.
        Prefer :class:`repro.api.ServiceDiagnoser` in new code.
        """
        return self.diagnose(name, inputs, labels, **kwargs).as_dict()

    def submit_diagnosis(
        self,
        name: str,
        inputs,
        labels,
        version: Optional[str] = None,
        metadata: Optional[Dict] = None,
    ) -> Job:
        """Queue an asynchronous diagnosis; poll the returned job for its report."""
        if self._closed:
            raise ServeError("service is closed")
        inputs, labels = self._validate_request(inputs, labels)
        key = self.resolve_key(name, version)

        def run() -> Dict:
            return self.diagnose_dict(
                name, inputs, labels, version=key.partition("@")[2], metadata=metadata
            )

        return self.pool.submit(
            run,
            kind="diagnosis",
            details={"model_key": key, "num_cases": int(inputs.shape[0])},
        )

    # -- introspection ------------------------------------------------------------

    def models(self) -> List[Dict]:
        """Manifest records of every registered artifact version."""
        return [record.as_dict() for record in self.registry.records()]

    def stats(self) -> Dict:
        return {
            "engine": self.engine.stats(),
            "jobs": self.jobs.counts(),
            "loaded_models": self.loaded_models(),
            "registered_models": self.registry.models(),
            "workers": self.pool.num_workers,
            "inference_dtype": (
                self.inference_dtype.name if self.inference_dtype is not None else "per-model"
            ),
            "monitor": self.monitor is not None,
        }

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.engine.stop()
        self.pool.shutdown()

    def __enter__(self) -> "DiagnosisService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"DiagnosisService(registry={str(self.registry.root)!r}, "
            f"loaded={self.loaded_models()}, closed={self._closed})"
        )
