"""Footprint caching for the diagnosis service.

Production monitoring re-submits the same inputs over and over (the same
faulty cases keep showing up while a defect is being investigated), and
footprint extraction — a full instrumented forward pass plus one probe
evaluation per hidden layer — is by far the most expensive step of a
diagnosis.  The service therefore memoizes per-case extraction results in a
bounded, thread-safe LRU cache keyed on a digest of the raw input bytes.

Cache values are ``(trajectory, final_probs)`` pairs, which are independent of
the request's true labels: labels are only attached when footprints are
rebuilt through :meth:`repro.core.FootprintExtractor.from_arrays`, so a case
cached during one request is reusable by any later request regardless of
labeling.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, Hashable, List, Optional, Tuple

import numpy as np

__all__ = ["LRUCache", "FootprintCache", "ResponseCache", "ResponseEntry", "input_digest"]


def input_digest(row: np.ndarray) -> str:
    """Stable content digest of one input example.

    Hashes the raw bytes together with shape and dtype so arrays that compare
    equal after a reshape or cast do not collide.
    """
    row = np.ascontiguousarray(row)
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(str(row.dtype).encode())
    hasher.update(str(row.shape).encode())
    hasher.update(row.tobytes())
    return hasher.hexdigest()


class LRUCache:
    """A thread-safe least-recently-used mapping with hit/miss accounting.

    ``maxsize <= 0`` disables the cache entirely (every ``get`` misses and
    ``put`` is a no-op), which gives the service a uniform code path for the
    "caching off" configuration.
    """

    def __init__(self, maxsize: int = 1024):
        self.maxsize = int(maxsize)
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def get(self, key: Hashable, default=None):
        """Return the cached value for ``key`` (marking it most recent) or ``default``."""
        with self._lock:
            if key not in self._data:
                self.misses += 1
                return default
            self.hits += 1
            self._data.move_to_end(key)
            return self._data[key]

    def put(self, key: Hashable, value) -> None:
        """Insert ``value`` under ``key``, evicting the least recent entry if full."""
        if self.maxsize <= 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._data),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def __repr__(self) -> str:
        return f"LRUCache(size={len(self)}, maxsize={self.maxsize})"


class FootprintCache:
    """Per-case ``(trajectory, final_probs)`` cache keyed on ``(model, input digest)``.

    The model key is part of the cache key because the same input produces
    different footprints under different registered models (or versions of the
    same model).  When a :class:`~repro.serve.metrics.MetricsRegistry` is
    given, per-row hits/misses, evictions, and the resident size are recorded
    there (in addition to the cache's own :meth:`stats` counters).
    """

    def __init__(self, maxsize: int = 4096, metrics=None):
        self._cache = LRUCache(maxsize)
        self._metrics = metrics
        if metrics is not None:
            self._m_hits = metrics.counter("cache.hits_total", "footprint cache row hits")
            self._m_misses = metrics.counter("cache.misses_total", "footprint cache row misses")
            self._m_evictions = metrics.counter(
                "cache.evictions_total", "footprint cache rows evicted"
            )
            self._m_size = metrics.gauge("cache.size", "footprint cache resident rows")

    def lookup(
        self, model_key: str, inputs: np.ndarray
    ) -> Tuple[List[Optional[Tuple[np.ndarray, np.ndarray]]], List[str]]:
        """Check every row of ``inputs`` against the cache.

        Returns ``(entries, digests)`` where ``entries[i]`` is the cached
        ``(trajectory, final_probs)`` pair for row ``i`` or ``None`` on a
        miss, and ``digests[i]`` is row ``i``'s content digest (so the caller
        can :meth:`store` freshly-extracted rows without re-hashing).
        """
        entries: List[Optional[Tuple[np.ndarray, np.ndarray]]] = []
        digests: List[str] = []
        for i in range(inputs.shape[0]):
            digest = input_digest(inputs[i])
            digests.append(digest)
            entries.append(self._cache.get((model_key, digest)))
        if self._metrics is not None:
            hits = sum(1 for entry in entries if entry is not None)
            self._m_hits.inc(hits)
            self._m_misses.inc(len(entries) - hits)
        return entries, digests

    def store(
        self, model_key: str, digest: str, trajectory: np.ndarray, final_probs: np.ndarray
    ) -> None:
        """Cache one freshly-extracted case."""
        before = self._cache.evictions
        self._cache.put((model_key, digest), (trajectory.copy(), final_probs.copy()))
        if self._metrics is not None:
            self._m_evictions.inc(self._cache.evictions - before)
            self._m_size.set(len(self._cache))

    def clear(self) -> None:
        self._cache.clear()

    def invalidate_model(self, model_key: str) -> int:
        """Drop every cached case of one model; returns how many were dropped."""
        with self._cache._lock:
            doomed = [key for key in self._cache._data if key[0] == model_key]
            for key in doomed:
                del self._cache._data[key]
        return len(doomed)

    def stats(self) -> Dict[str, int]:
        return self._cache.stats()

    def __repr__(self) -> str:
        return f"FootprintCache({self._cache!r})"


class ResponseEntry:
    """One cached ``/diagnose`` answer: the decoded document plus its encodings.

    The document is codec-neutral; wire bytes are produced lazily per codec
    and memoized, so a cache hit re-serves the exact bytes of the original
    response (bitwise identity for same-codec repeats) and a JSON entry can
    answer a binary client without recomputing the diagnosis.
    """

    __slots__ = ("expires_at", "document", "_encoded", "_lock")

    def __init__(self, expires_at: float, document: Dict):
        self.expires_at = float(expires_at)
        self.document = document
        self._encoded: Dict[str, bytes] = {}
        self._lock = threading.Lock()

    def encoded(self, codec) -> bytes:
        """The document as wire bytes under ``codec`` (memoized per content type)."""
        with self._lock:
            blob = self._encoded.get(codec.content_type)
            if blob is None:
                blob = codec.encode_report(self.document)
                self._encoded[codec.content_type] = blob
            return blob


class ResponseCache:
    """Two-level TTL'd response cache keyed on *decoded* request identity.

    A raw-body digest cannot share entries across wire codecs (the same
    arrays have different byte representations per encoding), so the cache
    keys twice:

    * ``(content type, body digest) -> canonical key`` — the loop-side fast
      path: a byte-identical repeat resolves to its entry without decoding
      anything;
    * ``canonical key -> ResponseEntry`` — the canonical level, keyed on
      :func:`repro.wire.request_digest` of the decoded request, so a JSON and
      a binary request for the same payload share one entry (the second
      codec's first hit pays one decode+digest, then its body digest is
      linked for the fast path).

    ``maxsize <= 0`` disables both levels.  Expired entries read as misses
    and are replaced by the next store.  Hit/miss accounting is the
    *caller's* (response-level counters live in the gateway's metrics);
    the embedded ``LRUCache`` counters are internal.
    """

    def __init__(
        self,
        maxsize: int = 1024,
        ttl_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.maxsize = int(maxsize)
        self.ttl_seconds = float(ttl_seconds)
        self._clock = clock
        # Sized alike: every entry has at least one body alias, and LRU
        # eviction keeps the alias map from outliving its entries for long.
        self._bodies = LRUCache(self.maxsize)
        self._entries = LRUCache(self.maxsize)

    @property
    def enabled(self) -> bool:
        return self.maxsize > 0

    @staticmethod
    def body_key(content_type: str, body: bytes) -> str:
        """Digest of one request's raw wire form (codec-qualified)."""
        hasher = hashlib.blake2b(digest_size=16)
        hasher.update(content_type.encode("utf-8"))
        hasher.update(b"\x00")
        hasher.update(body)
        return hasher.hexdigest()

    def _fresh(self, canonical_key: str) -> Optional[ResponseEntry]:
        entry = self._entries.get(canonical_key)
        if isinstance(entry, ResponseEntry) and self._clock() < entry.expires_at:
            return entry
        return None

    def lookup_body(
        self, content_type: str, body: bytes
    ) -> Tuple[Optional[str], Optional[ResponseEntry]]:
        """``(body key, fresh entry or None)`` — the pre-decode fast path.

        The key is ``None`` when the cache is disabled (callers skip every
        later cache step on ``None``).
        """
        if not self.enabled:
            return None, None
        key = self.body_key(content_type, body)
        canonical = self._bodies.get(key)
        if canonical is None:
            return key, None
        return key, self._fresh(canonical)

    def lookup_canonical(self, canonical_key: Optional[str]) -> Optional[ResponseEntry]:
        """A fresh entry under the decoded request's digest, if any."""
        if not self.enabled or canonical_key is None:
            return None
        return self._fresh(canonical_key)

    def link(self, body_key: Optional[str], canonical_key: str) -> None:
        """Alias one raw wire form to an entry (cross-codec fast-path admission)."""
        if self.enabled and body_key is not None:
            self._bodies.put(body_key, canonical_key)

    def store(
        self, body_key: Optional[str], canonical_key: str, document: Dict
    ) -> ResponseEntry:
        """Admit a freshly computed response under both key levels."""
        entry = ResponseEntry(self._clock() + self.ttl_seconds, document)
        self._entries.put(canonical_key, entry)
        self.link(body_key, canonical_key)
        return entry

    def clear(self) -> None:
        self._bodies.clear()
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"ResponseCache(size={len(self)}, maxsize={self.maxsize}, "
            f"ttl={self.ttl_seconds})"
        )
