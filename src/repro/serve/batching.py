"""Request batching for footprint extraction.

Footprint extraction is naturally batchable — the instrumented forward pass
and every probe evaluation are matrix products whose per-call overhead
(eval-mode toggling, per-layer dispatch, python loop setup) is amortized over
the batch dimension.  The batching engine exploits that across *requests*: a
dedicated extraction thread drains the incoming queue, groups the pending
requests by target model, concatenates their inputs, and pushes each group
through one :meth:`repro.core.SoftmaxInstrumentedModel.layer_distributions_grouped`
call.  Per-case results are memoized in a :class:`~repro.serve.cache.FootprintCache`
so repeated production cases skip extraction entirely.

Funneling every extraction through the single engine thread also makes the
service correct under concurrency: the numpy substrate's forward passes stash
per-layer state on the layer objects, so a model must never run two forward
passes at once.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import DeadlineExceededError, ServeError
from ..nn.dtype import policy_float
from ..obs import SpanContext, current_span, get_tracer
from ..resilience import Deadline, current_deadline, get_injector
from .cache import FootprintCache
from .metrics import DEFAULT_SIZE_BUCKETS, MetricsRegistry

__all__ = ["ExtractionRequest", "BatchingEngine"]

#: Signature of the raw extraction callback: ``(model_key, input_groups)`` ->
#: one ``(trajectories, final_probs)`` pair per group, computed in a single
#: coalesced instrumented pass.
ExtractFn = Callable[[str, Sequence[np.ndarray]], List[Tuple[np.ndarray, np.ndarray]]]

_SHUTDOWN = object()
_request_ids = itertools.count(1)


@dataclass
class ExtractionRequest:
    """One pending footprint-extraction request for a single model.

    ``trace`` carries the submitter's span context across the thread
    boundary into the engine's drain thread — ``contextvars`` do not follow
    a request through a queue, so the context is captured explicitly at
    submit time and engine-side spans parent to it.  ``deadline`` is captured
    the same way: the drain loop fails requests whose budget lapsed while
    they sat in the queue instead of spending a forward pass on them.
    """

    model_key: str
    inputs: np.ndarray
    future: "Future[Tuple[np.ndarray, np.ndarray]]" = field(default_factory=Future)
    request_id: int = field(default_factory=lambda: next(_request_ids))
    trace: Optional[SpanContext] = None
    deadline: Optional[Deadline] = None

    @property
    def num_cases(self) -> int:
        return int(self.inputs.shape[0])


class BatchingEngine:
    """Coalesces extraction requests into vectorized, cached batches.

    Parameters
    ----------
    extract_fn:
        Raw (uncached) coalesced extraction callback, typically bound to
        ``FootprintExtractor.extract_coalesced`` of a resolved model.
    cache:
        Per-case footprint cache consulted before extraction.  ``None``
        disables caching.
    max_batch_cases:
        Soft cap on the number of cases coalesced into one batch; the drain
        loop stops gathering once the pending batch reaches it.  A single
        over-sized request is never split (the underlying extractor chunks
        internally).
    max_wait_seconds:
        How long the drain loop keeps the first request of a batch waiting
        for co-travellers before extracting.  Bounds added latency.
    metrics:
        Optional :class:`~repro.serve.metrics.MetricsRegistry`; when given,
        the engine records request/batch counters, coalesced batch sizes,
        extraction latency, and its queue depth there.
    monitor:
        Optional :class:`~repro.monitor.MonitorSink` (duck-typed: anything
        with ``observe_extracted``).  Every freshly extracted stack is fed to
        it from the drain — cache hits are not re-fed, so repeated payloads
        cannot swamp the drift window.  The sink's contract is to never raise
        and never block.
    """

    def __init__(
        self,
        extract_fn: ExtractFn,
        cache: Optional[FootprintCache] = None,
        max_batch_cases: int = 512,
        max_wait_seconds: float = 0.005,
        metrics: Optional[MetricsRegistry] = None,
        monitor=None,
    ):
        if max_batch_cases < 1:
            raise ServeError(f"max_batch_cases must be >= 1, got {max_batch_cases}")
        if max_wait_seconds < 0:
            raise ServeError(f"max_wait_seconds must be >= 0, got {max_wait_seconds}")
        self.extract_fn = extract_fn
        self.cache = cache
        self.monitor = monitor
        self.max_batch_cases = int(max_batch_cases)
        self.max_wait_seconds = float(max_wait_seconds)
        self._queue: "queue.Queue" = queue.Queue()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._stats_lock = threading.Lock()
        self._stats = {
            "requests": 0,
            "batches": 0,
            "extraction_calls": 0,
            "cases_requested": 0,
            "cases_extracted": 0,
            "cases_from_cache": 0,
            "requests_expired": 0,
        }
        self._metrics = metrics
        if metrics is not None:
            self._m_requests = metrics.counter(
                "engine.requests_total", "extraction requests submitted to the engine"
            )
            self._m_batches = metrics.counter(
                "engine.batches_total", "coalesced batches processed"
            )
            self._m_cases_extracted = metrics.counter(
                "engine.cases_extracted_total", "cases that reached the instrumented model"
            )
            self._m_cases_cached = metrics.counter(
                "engine.cases_from_cache_total", "cases resolved from the footprint cache"
            )
            self._m_batch_cases = metrics.histogram(
                "engine.batch_cases",
                "cases per coalesced batch",
                buckets=DEFAULT_SIZE_BUCKETS,
            )
            self._m_extract_seconds = metrics.histogram(
                "engine.extraction_seconds", "wall time of one coalesced extraction call"
            )
            self._m_queue_depth = metrics.gauge(
                "engine.queue_depth", "extraction requests waiting in the engine queue"
            )
            self._m_expired = metrics.counter(
                "engine.deadline_expired_total",
                "queued requests dropped because their deadline lapsed before extraction",
            )

    # -- lifecycle ---------------------------------------------------------------

    @property
    def is_running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "BatchingEngine":
        """Start the background extraction thread (idempotent)."""
        if not self.is_running:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._drain_loop, name="repro-serve-batcher", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the extraction thread, failing any requests still queued."""
        self._stop.set()
        if self.is_running:
            self._queue.put(_SHUTDOWN)
            self._thread.join(timeout=timeout)
        # Only forget the thread once it is genuinely gone: if the join timed
        # out mid-extraction, a synchronous submit() racing the still-running
        # thread would run two forward passes on one model at once.
        if self._thread is not None and not self._thread.is_alive():
            self._thread = None
        self._fail_pending()

    def _fail_pending(self) -> None:
        """Fail every request still sitting in the queue."""
        while True:
            try:
                leftover = self._queue.get_nowait()
            except queue.Empty:
                break
            if leftover is not _SHUTDOWN and not leftover.future.done():
                leftover.future.set_exception(ServeError("batching engine stopped"))

    # -- submission ---------------------------------------------------------------

    def submit(self, model_key: str, inputs: np.ndarray) -> ExtractionRequest:
        """Enqueue an extraction request; its future resolves to ``(traj, final)``.

        When the engine thread is not running the request is processed
        synchronously on the calling thread (still through the cache), so the
        engine degrades gracefully to a direct-call library API.
        """
        if self._stop.is_set():
            raise ServeError("batching engine is stopped")
        request = ExtractionRequest(
            model_key=str(model_key),
            inputs=policy_float(inputs),
            trace=get_tracer().current_context(),
            deadline=current_deadline(),
        )
        if self._metrics is not None:
            self._m_requests.inc()
        if self.is_running:
            self._queue.put(request)
            if self._metrics is not None:
                self._m_queue_depth.set(self._queue.qsize())
            # stop() may have drained the queue between our check and the
            # put; failing pending requests here closes that window instead
            # of leaving the future hanging forever.
            if self._stop.is_set() and not self.is_running:
                self._fail_pending()
        else:
            self.process_batch([request])
        return request

    def extract(
        self, model_key: str, inputs: np.ndarray, timeout: Optional[float] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Submit and wait: returns ``(trajectories, final_probs)`` for ``inputs``."""
        return self.submit(model_key, inputs).future.result(timeout=timeout)

    # -- the drain loop -----------------------------------------------------------

    def _drain_loop(self) -> None:
        while not self._stop.is_set():
            try:
                first = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            if first is _SHUTDOWN:
                break
            batch = [first]
            cases = first.num_cases
            deadline = time.monotonic() + self.max_wait_seconds
            while cases < self.max_batch_cases:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    request = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if request is _SHUTDOWN:
                    self._stop.set()
                    break
                batch.append(request)
                cases += request.num_cases
            self.process_batch(batch)

    # -- batch processing ---------------------------------------------------------

    def process_batch(self, requests: Sequence[ExtractionRequest]) -> None:
        """Resolve a coalesced batch of requests, consulting the cache per case.

        Exposed for synchronous use and tests; the drain loop calls it with
        whatever it gathered within one batching window.
        """
        if not requests:
            return
        injector = get_injector()
        if injector.enabled:
            try:
                injector.inject("batching.drain")
            except Exception as error:  # noqa: BLE001 - injected fault fails the batch
                for request in requests:
                    if not request.future.done():
                        request.future.set_exception(error)
                return
        # Deadline triage: a request whose budget lapsed while queued gets a
        # typed failure now — a forward pass on it would be pure waste, and
        # its caller has already given up.
        live: List[ExtractionRequest] = []
        for request in requests:
            if request.deadline is not None and request.deadline.expired():
                if not request.future.done():
                    request.future.set_exception(
                        DeadlineExceededError(
                            "deadline expired while queued for extraction"
                        )
                    )
                with self._stats_lock:
                    self._stats["requests_expired"] += 1
                if self._metrics is not None:
                    self._m_expired.inc()
            else:
                live.append(request)
        requests = live
        if not requests:
            return
        by_model: Dict[str, List[ExtractionRequest]] = {}
        for request in requests:
            by_model.setdefault(request.model_key, []).append(request)
        with self._stats_lock:
            self._stats["batches"] += 1
            self._stats["requests"] += len(requests)
            self._stats["cases_requested"] += sum(r.num_cases for r in requests)
        if self._metrics is not None:
            self._m_batches.inc()
            self._m_batch_cases.observe(sum(r.num_cases for r in requests))
            self._m_queue_depth.set(self._queue.qsize())
        for model_key, group in by_model.items():
            # Engine-side span, parented (via the explicitly captured context)
            # to the first co-travelling request's trace; requests coalesced
            # from *other* traces are noted by count.
            parent = next((r.trace for r in group if r.trace is not None), None)
            traces = {r.trace.trace_id for r in group if r.trace is not None}
            with get_tracer().span(
                "batching.batch",
                {
                    "model_key": model_key,
                    "num_requests": len(group),
                    "num_cases": sum(r.num_cases for r in group),
                    "num_traces": len(traces),
                },
                parent=parent,
            ):
                try:
                    self._process_model_group(model_key, group)
                except Exception as error:  # noqa: BLE001 - fail the waiting futures
                    for request in group:
                        if not request.future.done():
                            request.future.set_exception(error)

    def _timed_extract(
        self, model_key: str, groups: Sequence[np.ndarray]
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Run the raw extraction callback, recording its wall time when metered."""
        if self._metrics is None:
            return self.extract_fn(model_key, groups)
        start = time.perf_counter()
        try:
            return self.extract_fn(model_key, groups)
        finally:
            self._m_extract_seconds.observe(time.perf_counter() - start)

    def _process_model_group(self, model_key: str, group: List[ExtractionRequest]) -> None:
        if self.cache is None:
            self._process_model_group_direct(model_key, group)
            return
        # Cached path from here on.  Per-case cache consultation: only rows
        # never seen before reach the model.  Duplicate rows *within* the
        # coalesced batch (the same faulty case submitted concurrently) are
        # extracted once, via their digest.
        # `slots[r][i]` is row i of request r; a missing slot holds the index
        # into `missing_rows` it will be filled from.
        slots: List[List[Optional[Tuple[np.ndarray, np.ndarray]]]] = []
        digests_per_request: List[List[str]] = []
        missing_rows: List[np.ndarray] = []
        missing_at: List[Tuple[int, int, int]] = []
        digest_to_slot: Dict[str, int] = {}
        for r, request in enumerate(group):
            entries, digests = self.cache.lookup(model_key, request.inputs)
            slots.append(entries)
            digests_per_request.append(digests)
            for i, entry in enumerate(entries):
                if entry is not None:
                    continue
                digest = digests[i]
                if digest in digest_to_slot:
                    row_index = digest_to_slot[digest]
                else:
                    row_index = len(missing_rows)
                    missing_rows.append(request.inputs[i])
                    digest_to_slot[digest] = row_index
                missing_at.append((r, i, row_index))

        # Dup slots resolved from a co-travelling row count as "from cache":
        # cases_from_cache + cases_extracted always equals cases_requested.
        cached_count = sum(r.num_cases for r in group) - len(missing_rows)
        if missing_rows:
            stacked = np.stack(missing_rows, axis=0)
            (trajectories, final_probs), = self._timed_extract(model_key, [stacked])
            if self.monitor is not None:
                self.monitor.observe_extracted(model_key, trajectories, final_probs)
            stored: set = set()
            for r, i, row_index in missing_at:
                pair = (trajectories[row_index], final_probs[row_index])
                slots[r][i] = pair
                if row_index not in stored:
                    stored.add(row_index)
                    self.cache.store(model_key, digests_per_request[r][i], *pair)
        with self._stats_lock:
            self._stats["cases_from_cache"] += cached_count
            self._stats["cases_extracted"] += len(missing_rows)
            if missing_rows:
                self._stats["extraction_calls"] += 1
        if self._metrics is not None:
            self._m_cases_cached.inc(cached_count)
            self._m_cases_extracted.inc(len(missing_rows))
        active = current_span()
        if active is not None:
            active.set_attributes(
                {"cases_from_cache": cached_count, "cases_extracted": len(missing_rows)}
            )

        for request, entries in zip(group, slots):
            if request.future.done():
                continue
            if request.num_cases == 0:
                request.future.set_result((np.zeros((0, 0, 0)), np.zeros((0, 0))))
                continue
            trajectories = np.stack([entry[0] for entry in entries], axis=0)
            final_probs = np.stack([entry[1] for entry in entries], axis=0)
            request.future.set_result((trajectories, final_probs))

    def _process_model_group_direct(
        self, model_key: str, group: List[ExtractionRequest]
    ) -> None:
        """Cache-free fast path: the whole coalesced group goes to the batched core.

        Without a cache there is nothing to consult per row, so the per-slot
        bookkeeping of the cached path is pure overhead; the requests' input
        groups are handed directly to one coalesced extraction call and the
        per-group results map straight back onto the waiting futures.
        """
        pending = []
        for request in group:
            if request.num_cases == 0:
                if not request.future.done():
                    request.future.set_result((np.zeros((0, 0, 0)), np.zeros((0, 0))))
            else:
                pending.append(request)
        if pending:
            results = self._timed_extract(
                model_key, [request.inputs for request in pending]
            )
            for request, pair in zip(pending, results):
                if self.monitor is not None:
                    self.monitor.observe_extracted(model_key, pair[0], pair[1])
                if not request.future.done():
                    request.future.set_result(pair)
        with self._stats_lock:
            self._stats["cases_extracted"] += sum(r.num_cases for r in pending)
            if pending:
                self._stats["extraction_calls"] += 1
        if self._metrics is not None:
            self._m_cases_extracted.inc(sum(r.num_cases for r in pending))
        active = current_span()
        if active is not None:
            active.set_attributes(
                {"cases_from_cache": 0, "cases_extracted": sum(r.num_cases for r in pending)}
            )

    # -- introspection ------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Counters describing coalescing and cache effectiveness."""
        with self._stats_lock:
            counters = dict(self._stats)
        if self.cache is not None:
            counters["cache"] = self.cache.stats()
        counters["running"] = self.is_running
        return counters

    def __repr__(self) -> str:
        return (
            f"BatchingEngine(max_batch_cases={self.max_batch_cases}, "
            f"max_wait={self.max_wait_seconds}, running={self.is_running})"
        )
