"""Defect taxonomy and injection reports.

The paper studies three representative defect types.  This module defines the
shared vocabulary: the :class:`DefectType` enumeration used everywhere (defect
injection, per-case verdicts, aggregated reports, Table I) and the report
dataclasses that record exactly what an injection changed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List

__all__ = ["DefectType", "DataInjectionReport", "StructureInjectionReport"]


class DefectType(str, Enum):
    """The three defect categories DeepMorph distinguishes (plus NONE).

    * ``ITD`` — insufficient training data: the training distribution misses
      part of the production distribution.
    * ``UTD`` — unreliable training data: part of the training set is
      mislabeled.
    * ``SD`` — structure defect: the network architecture is too weak to learn
      appropriate features.
    * ``NONE`` — no injected defect (clean baseline runs).
    """

    ITD = "itd"
    UTD = "utd"
    SD = "sd"
    NONE = "none"

    @classmethod
    def injectable(cls) -> List["DefectType"]:
        """The defect types that can actually be injected (everything but NONE)."""
        return [cls.ITD, cls.UTD, cls.SD]

    @classmethod
    def from_string(cls, value: str) -> "DefectType":
        """Parse a defect type case-insensitively, with a helpful error."""
        try:
            return cls(value.strip().lower())
        except ValueError as exc:
            valid = [member.value for member in cls]
            raise ValueError(f"unknown defect type {value!r}; expected one of {valid}") from exc

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class DataInjectionReport:
    """What a data-level defect injection (ITD or UTD) did to a dataset.

    Attributes
    ----------
    defect_type:
        Which defect was injected.
    original_size, injected_size:
        Dataset sizes before and after injection.
    affected_classes:
        Classes whose data was removed (ITD) or relabeled (UTD).
    removed_per_class:
        ITD only — number of examples removed from each affected class.
    relabeled_count:
        UTD only — number of examples whose label was changed.
    relabel_map:
        UTD only — mapping from source class to the class its examples were
        retagged as.
    description:
        One-line human-readable summary.
    """

    defect_type: DefectType
    original_size: int
    injected_size: int
    affected_classes: List[int] = field(default_factory=list)
    removed_per_class: Dict[int, int] = field(default_factory=dict)
    relabeled_count: int = 0
    relabel_map: Dict[int, int] = field(default_factory=dict)
    description: str = ""

    def as_dict(self) -> Dict:
        """JSON-friendly representation."""
        return {
            "defect_type": self.defect_type.value,
            "original_size": self.original_size,
            "injected_size": self.injected_size,
            "affected_classes": list(self.affected_classes),
            "removed_per_class": {str(k): v for k, v in self.removed_per_class.items()},
            "relabeled_count": self.relabeled_count,
            "relabel_map": {str(k): v for k, v in self.relabel_map.items()},
            "description": self.description,
        }


@dataclass(frozen=True)
class StructureInjectionReport:
    """What a structure-defect injection did to a model architecture.

    Attributes
    ----------
    model_kind:
        Registry name of the affected architecture.
    original_config, degraded_config:
        The hyperparameter dictionaries before and after degradation.
    removed_units:
        Human-readable list of what was removed (e.g. ``"conv stage conv2"``,
        ``"residual block group 3"``).
    description:
        One-line human-readable summary.
    """

    model_kind: str
    original_config: Dict
    degraded_config: Dict
    removed_units: List[str] = field(default_factory=list)
    description: str = ""
    defect_type: DefectType = DefectType.SD

    def as_dict(self) -> Dict:
        """JSON-friendly representation."""
        return {
            "defect_type": self.defect_type.value,
            "model_kind": self.model_kind,
            "original_config": dict(self.original_config),
            "degraded_config": dict(self.degraded_config),
            "removed_units": list(self.removed_units),
            "description": self.description,
        }
