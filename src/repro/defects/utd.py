"""Unreliable-training-data (UTD) defect injection.

The paper injects UTD by "tag[ging] a part of the training data of one class
to the other" — a systematic labeling mistake.  The network then genuinely
learns to map part of the source class's input region to the wrong class,
which is what DeepMorph's footprint analysis later recognizes as "confidently
executing the wrong class's pattern".
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..data.dataset import ArrayDataset, class_indices
from ..exceptions import DefectInjectionError
from ..rng import RngLike, ensure_rng
from .spec import DataInjectionReport, DefectType

__all__ = ["UnreliableTrainingData"]


class UnreliableTrainingData:
    """Mislabel a fraction of one class's training examples as another class.

    Parameters
    ----------
    source_class:
        The class whose examples get wrong labels.  ``None`` picks one at
        injection time.
    target_class:
        The wrong label assigned.  ``None`` picks a different class at
        injection time.
    fraction:
        Fraction of the source class's examples to mislabel, in ``(0, 1]``.
    """

    defect_type = DefectType.UTD

    def __init__(
        self,
        source_class: Optional[int] = None,
        target_class: Optional[int] = None,
        fraction: float = 0.35,
    ):
        if not 0.0 < fraction <= 1.0:
            raise DefectInjectionError(f"fraction must lie in (0, 1], got {fraction}")
        if (
            source_class is not None
            and target_class is not None
            and int(source_class) == int(target_class)
        ):
            raise DefectInjectionError("source_class and target_class must differ")
        self.source_class = int(source_class) if source_class is not None else None
        self.target_class = int(target_class) if target_class is not None else None
        self.fraction = float(fraction)

    def describe(self) -> str:
        """One-line description of the injection."""
        src = self.source_class if self.source_class is not None else "?"
        dst = self.target_class if self.target_class is not None else "?"
        return f"UTD: relabel {self.fraction:.0%} of class {src} as class {dst}"

    def apply(
        self, dataset: ArrayDataset, rng: RngLike = None
    ) -> Tuple[ArrayDataset, DataInjectionReport]:
        """Return the corrupted dataset and a report of what was relabeled."""
        generator = ensure_rng(rng)
        labels = dataset.labels.copy()
        per_class = class_indices(labels, dataset.num_classes)

        source = self.source_class
        if source is None:
            candidates = [c for c in range(dataset.num_classes) if per_class[c].size > 0]
            if not candidates:
                raise DefectInjectionError("dataset has no non-empty classes to corrupt")
            source = int(generator.choice(candidates))
        if not 0 <= source < dataset.num_classes:
            raise DefectInjectionError(
                f"source class {source} out of range for {dataset.num_classes} classes"
            )
        if per_class[source].size == 0:
            raise DefectInjectionError(f"source class {source} has no examples to relabel")

        target = self.target_class
        if target is None:
            others = [c for c in range(dataset.num_classes) if c != source]
            target = int(generator.choice(others))
        if not 0 <= target < dataset.num_classes:
            raise DefectInjectionError(
                f"target class {target} out of range for {dataset.num_classes} classes"
            )
        if target == source:
            raise DefectInjectionError("source and target class must differ")

        idx = per_class[source]
        n_relabel = int(np.floor(idx.size * self.fraction))
        n_relabel = max(n_relabel, 1)
        chosen = generator.choice(idx, size=n_relabel, replace=False)
        labels[chosen] = target

        injected = dataset.with_labels(labels, name=f"{dataset.name}[utd]")
        report = DataInjectionReport(
            defect_type=DefectType.UTD,
            original_size=len(dataset),
            injected_size=len(injected),
            affected_classes=[source],
            relabeled_count=int(n_relabel),
            relabel_map={source: target},
            description=f"UTD: relabel {self.fraction:.0%} of class {source} as class {target}",
        )
        return injected, report
