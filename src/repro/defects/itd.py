"""Insufficient-training-data (ITD) defect injection.

The paper injects ITD by "randomly remov[ing] a part of data of some specific
classes", creating a mismatch between the training distribution and the
production distribution: the network sees too few examples of the affected
classes, so their intra-class variability is under-covered and production
inputs from those classes get misclassified.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..data.dataset import ArrayDataset, class_indices
from ..exceptions import DefectInjectionError
from ..rng import RngLike, ensure_rng
from .spec import DataInjectionReport, DefectType

__all__ = ["InsufficientTrainingData"]


class InsufficientTrainingData:
    """Remove most of the training data of selected classes.

    Parameters
    ----------
    affected_classes:
        Classes to starve.  ``None`` selects ``num_affected`` classes at
        injection time (deterministically from the injection RNG).
    num_affected:
        How many classes to starve when ``affected_classes`` is ``None``.
    keep_fraction:
        Fraction of each affected class's examples that survives, in
        ``[0, 1)``.  The paper removes "a part" of the data; the default keeps
        10 %, which reliably degrades the affected classes without emptying
        them.
    """

    defect_type = DefectType.ITD

    def __init__(
        self,
        affected_classes: Optional[Sequence[int]] = None,
        num_affected: int = 3,
        keep_fraction: float = 0.1,
    ):
        if not 0.0 <= keep_fraction < 1.0:
            raise DefectInjectionError(
                f"keep_fraction must lie in [0, 1), got {keep_fraction}"
            )
        if affected_classes is None and num_affected <= 0:
            raise DefectInjectionError(
                f"num_affected must be positive when affected_classes is None, got {num_affected}"
            )
        self.affected_classes = (
            [int(c) for c in affected_classes] if affected_classes is not None else None
        )
        self.num_affected = int(num_affected)
        self.keep_fraction = float(keep_fraction)

    def describe(self) -> str:
        """One-line description of the injection."""
        target = (
            f"classes {self.affected_classes}"
            if self.affected_classes is not None
            else f"{self.num_affected} classes"
        )
        return f"ITD: keep {self.keep_fraction:.0%} of the training data of {target}"

    def apply(
        self, dataset: ArrayDataset, rng: RngLike = None
    ) -> Tuple[ArrayDataset, DataInjectionReport]:
        """Return the starved dataset and a report of what was removed."""
        generator = ensure_rng(rng)
        labels = dataset.labels
        per_class = class_indices(labels, dataset.num_classes)

        if self.affected_classes is not None:
            affected = sorted(set(self.affected_classes))
            invalid = [c for c in affected if not 0 <= c < dataset.num_classes]
            if invalid:
                raise DefectInjectionError(
                    f"affected classes {invalid} out of range for {dataset.num_classes} classes"
                )
        else:
            candidates = [c for c in range(dataset.num_classes) if per_class[c].size > 0]
            if len(candidates) < self.num_affected:
                raise DefectInjectionError(
                    f"dataset has only {len(candidates)} non-empty classes, cannot starve "
                    f"{self.num_affected}"
                )
            affected = sorted(
                generator.choice(candidates, size=self.num_affected, replace=False).tolist()
            )

        keep_indices: List[np.ndarray] = []
        removed_per_class = {}
        for cls in range(dataset.num_classes):
            idx = per_class[cls]
            if cls not in affected or idx.size == 0:
                keep_indices.append(idx)
                continue
            n_keep = int(np.floor(idx.size * self.keep_fraction))
            n_keep = max(n_keep, 1) if self.keep_fraction > 0 else n_keep
            chosen = generator.choice(idx, size=n_keep, replace=False) if n_keep > 0 else np.array([], dtype=np.int64)
            keep_indices.append(np.sort(chosen))
            removed_per_class[cls] = int(idx.size - n_keep)

        kept = np.sort(np.concatenate(keep_indices)) if keep_indices else np.array([], dtype=np.int64)
        if kept.size == 0:
            raise DefectInjectionError("ITD injection removed the entire dataset")

        injected = dataset.select(kept, name=f"{dataset.name}[itd]")
        report = DataInjectionReport(
            defect_type=DefectType.ITD,
            original_size=len(dataset),
            injected_size=len(injected),
            affected_classes=affected,
            removed_per_class=removed_per_class,
            description=self.describe(),
        )
        return injected, report
