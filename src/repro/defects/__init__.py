"""Defect injection: the three defect types studied in the paper.

* :class:`InsufficientTrainingData` (ITD) — starve selected classes of
  training data.
* :class:`UnreliableTrainingData` (UTD) — systematically mislabel part of one
  class.
* :class:`StructureDefect` (SD) — remove convolutional capacity from the
  architecture.

:func:`build_defect` constructs any of them from a :class:`DefectType` and
keyword arguments, which is what the experiment harness and CLI use.
"""

from typing import Union

from ..exceptions import DefectInjectionError
from .itd import InsufficientTrainingData
from .spec import DataInjectionReport, DefectType, StructureInjectionReport
from .structure import StructureDefect
from .utd import UnreliableTrainingData

__all__ = [
    "DefectType",
    "DataInjectionReport",
    "StructureInjectionReport",
    "InsufficientTrainingData",
    "UnreliableTrainingData",
    "StructureDefect",
    "build_defect",
]

Defect = Union[InsufficientTrainingData, UnreliableTrainingData, StructureDefect]


def build_defect(defect_type: "DefectType | str", **kwargs) -> Defect:
    """Construct the injector for ``defect_type`` with its keyword arguments."""
    if isinstance(defect_type, str):
        defect_type = DefectType.from_string(defect_type)
    if defect_type == DefectType.ITD:
        return InsufficientTrainingData(**kwargs)
    if defect_type == DefectType.UTD:
        return UnreliableTrainingData(**kwargs)
    if defect_type == DefectType.SD:
        return StructureDefect(**kwargs)
    raise DefectInjectionError(f"cannot build an injector for defect type {defect_type!r}")
