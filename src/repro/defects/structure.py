"""Structure-defect (SD) injection.

The paper injects SD by "manually removing ... Convolution layer[s] from the
original network structures, which aims at degrading the models via a weaker
network structure".  This module automates that operation for every
architecture in the model zoo: it rewrites the model's hyperparameter config
to drop convolution stages / residual blocks / dense units (and optionally
narrow the surviving channels), then rebuilds the degraded model through the
registry.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ..exceptions import DefectInjectionError
from ..models.registry import build_from_config
from ..models.base import ClassifierModel
from ..rng import RngLike
from .spec import DefectType, StructureInjectionReport

__all__ = ["StructureDefect"]


class StructureDefect:
    """Weaken a model's architecture by removing convolutional capacity.

    Parameters
    ----------
    keep_fraction:
        Fraction of the convolution stages (LeNet/AlexNet), residual blocks
        (ResNet), or dense units per block (DenseNet) to keep, in ``(0, 1]``.
        At least one unit always survives so the model remains buildable.
    narrow_factor:
        Multiplier applied to the surviving channel widths / growth rate, in
        ``(0, 1]``.  1.0 keeps widths unchanged.
    """

    defect_type = DefectType.SD

    def __init__(self, keep_fraction: float = 0.34, narrow_factor: float = 0.5):
        if not 0.0 < keep_fraction <= 1.0:
            raise DefectInjectionError(f"keep_fraction must lie in (0, 1], got {keep_fraction}")
        if not 0.0 < narrow_factor <= 1.0:
            raise DefectInjectionError(f"narrow_factor must lie in (0, 1], got {narrow_factor}")
        self.keep_fraction = float(keep_fraction)
        self.narrow_factor = float(narrow_factor)

    def describe(self) -> str:
        """One-line description of the injection."""
        return (
            f"SD: keep {self.keep_fraction:.0%} of conv stages/blocks, "
            f"narrow surviving widths to {self.narrow_factor:.0%}"
        )

    # -- config rewriting -----------------------------------------------------

    def _keep_count(self, total: int) -> int:
        return max(1, int(math.floor(total * self.keep_fraction)))

    def _narrow(self, value: int) -> int:
        return max(1, int(round(value * self.narrow_factor)))

    def apply_to_config(self, config: Dict) -> Tuple[Dict, StructureInjectionReport]:
        """Rewrite a :meth:`ClassifierModel.config` dict into its degraded form."""
        if "kind" not in config or "hyperparameters" not in config:
            raise DefectInjectionError(
                "config must contain 'kind' and 'hyperparameters' (use ClassifierModel.config())"
            )
        kind = config["kind"]
        hp = dict(config["hyperparameters"])
        removed: List[str] = []

        if kind in ("lenet", "alexnet"):
            channels = list(hp.get("conv_channels", []))
            if not channels:
                raise DefectInjectionError(
                    f"{kind} config has no convolution stages left to remove"
                )
            keep = self._keep_count(len(channels))
            for i in range(keep, len(channels)):
                removed.append(f"conv stage conv{i + 1} ({channels[i]} channels)")
            channels = [self._narrow(c) for c in channels[:keep]]
            hp["conv_channels"] = channels
            # A structurally weak network is weak throughout: the surviving
            # dense head is narrowed as well, so the defect cannot be hidden
            # by a large fully-connected classifier memorizing the data.
            hp["dense_units"] = [self._narrow(u) for u in hp.get("dense_units", [])] or hp.get("dense_units")
            if kind == "alexnet":
                hp["pool_after"] = [i for i in hp.get("pool_after", []) if i < keep]
        elif kind == "resnet":
            counts = list(hp.get("block_counts", []))
            if not counts:
                raise DefectInjectionError("resnet config has no block groups left to remove")
            total_blocks = sum(counts)
            keep_blocks = self._keep_count(total_blocks)
            new_counts: List[int] = []
            remaining = keep_blocks
            for group, count in enumerate(counts):
                take = min(count, remaining)
                if take > 0:
                    new_counts.append(take)
                if take < count:
                    removed.append(f"{count - take} residual block(s) from group {group + 1}")
                remaining -= take
            hp["block_counts"] = new_counts or [1]
            hp["base_channels"] = self._narrow(int(hp.get("base_channels", 16)))
        elif kind == "densenet":
            units = list(hp.get("units_per_block", []))
            if not units:
                raise DefectInjectionError("densenet config has no dense blocks left to remove")
            new_units = []
            for block, count in enumerate(units):
                keep = self._keep_count(count)
                if keep < count:
                    removed.append(f"{count - keep} dense unit(s) from block {block + 1}")
                new_units.append(keep)
            hp["units_per_block"] = new_units
            hp["growth_rate"] = self._narrow(int(hp.get("growth_rate", 6)))
        else:
            raise DefectInjectionError(
                f"structure defect injection does not know architecture kind {kind!r}"
            )

        if self.narrow_factor < 1.0:
            removed.append(f"narrowed surviving widths by factor {self.narrow_factor}")

        degraded = {
            "kind": kind,
            "input_shape": list(config["input_shape"]),
            "num_classes": int(config["num_classes"]),
            "hyperparameters": hp,
        }
        report = StructureInjectionReport(
            model_kind=kind,
            original_config=dict(config["hyperparameters"]),
            degraded_config=dict(hp),
            removed_units=removed,
            description=self.describe(),
        )
        return degraded, report

    # -- model rebuilding --------------------------------------------------------

    def apply(
        self, model: ClassifierModel, rng: RngLike = None
    ) -> Tuple[ClassifierModel, StructureInjectionReport]:
        """Build a freshly-initialized degraded variant of ``model``.

        The degraded model is *untrained*: structure defects act at design
        time, so the experiment harness trains the degraded architecture on
        the clean training data, exactly as the paper does.
        """
        degraded_config, report = self.apply_to_config(model.config())
        degraded_model = build_from_config(degraded_config, rng=rng)
        return degraded_model, report
