"""Exception hierarchy for the repro (DeepMorph reproduction) library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can distinguish library failures from
programming mistakes with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the repro library."""


class ShapeError(ReproError, ValueError):
    """An array does not have the shape a component requires.

    Raised, for example, when a layer receives an input whose rank or channel
    count does not match what the layer was built for, or when labels and
    inputs disagree on the number of examples.
    """


class ConfigurationError(ReproError, ValueError):
    """A component was constructed or configured with invalid arguments."""


class NotFittedError(ReproError, RuntimeError):
    """An operation requires a fitted/trained component that is not fitted.

    Raised by probes, pattern libraries, and the :class:`~repro.core.DeepMorph`
    facade when ``diagnose``-style methods are called before ``fit``.
    """


class DatasetError(ReproError, ValueError):
    """A dataset violates an invariant (empty split, unknown class, ...)."""


class DefectInjectionError(ReproError, ValueError):
    """A defect specification cannot be applied to the given dataset or model."""


class SerializationError(ReproError, ValueError):
    """An artifact could not be saved or loaded."""


class ExperimentError(ReproError, RuntimeError):
    """An experiment harness failed to produce a result."""


class ServeError(ReproError, RuntimeError):
    """The diagnosis service layer failed (bad request, shut-down engine, ...)."""


class ArtifactNotFoundError(ServeError, KeyError):
    """A model name/version is not present in the artifact registry."""


class PayloadTooLargeError(ServeError):
    """A request body exceeds the serving layer's configured size limit."""


class ServiceSaturatedError(ServeError):
    """Admission control rejected a request because every replica queue is full.

    Carries ``retry_after`` (seconds), which HTTP front ends surface as a
    ``Retry-After`` header on the 503 response.
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = float(retry_after)
