"""Exception hierarchy for the repro (DeepMorph reproduction) library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can distinguish library failures from
programming mistakes with a single ``except`` clause.

This module is also the single place where the serving wire protocol's error
responses map back onto typed exceptions: HTTP front ends serialize an error
as ``{"error": <message>, "error_type": <class name>}`` plus a status code
(see :func:`repro.serve.protocol.error_response`), and clients rebuild the
original exception class with :func:`exception_from_wire`.  Keeping both
directions anchored on this hierarchy means a remote caller catches exactly
the same exception types an embedded caller does.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

__all__ = [
    "ReproError",
    "ShapeError",
    "ConfigurationError",
    "NotFittedError",
    "DatasetError",
    "DefectInjectionError",
    "SerializationError",
    "ExperimentError",
    "SchemaVersionError",
    "NoFaultyCasesError",
    "ServeError",
    "ArtifactNotFoundError",
    "PayloadTooLargeError",
    "ServiceSaturatedError",
    "RemoteTransportError",
    "CodecError",
    "UnsupportedMediaTypeError",
    "DeadlineExceededError",
    "CircuitOpenError",
    "MonitorOverflowError",
    "exception_from_wire",
]


class ReproError(Exception):
    """Base class of every exception raised by the repro library."""


class ShapeError(ReproError, ValueError):
    """An array does not have the shape a component requires.

    Raised, for example, when a layer receives an input whose rank or channel
    count does not match what the layer was built for, or when labels and
    inputs disagree on the number of examples.
    """


class ConfigurationError(ReproError, ValueError):
    """A component was constructed or configured with invalid arguments."""


class NotFittedError(ReproError, RuntimeError):
    """An operation requires a fitted/trained component that is not fitted.

    Raised by probes, pattern libraries, and the :class:`~repro.core.DeepMorph`
    facade when ``diagnose``-style methods are called before ``fit``.
    """


class DatasetError(ReproError, ValueError):
    """A dataset violates an invariant (empty split, unknown class, ...)."""


class DefectInjectionError(ReproError, ValueError):
    """A defect specification cannot be applied to the given dataset or model."""


class SerializationError(ReproError, ValueError):
    """An artifact could not be saved or loaded."""


class ExperimentError(ReproError, RuntimeError):
    """An experiment harness failed to produce a result."""


class SchemaVersionError(ReproError, ValueError):
    """A request/report payload declares a schema version this library does not speak."""


class NoFaultyCasesError(ConfigurationError):
    """None of the submitted production cases is misclassified by the model.

    A defect diagnosis needs misclassifications as evidence; a batch with no
    faulty cases has nothing to diagnose.  Subclasses
    :class:`ConfigurationError`, so pre-existing handlers keep working, while
    streaming callers (``Diagnoser.diagnose_iter``) can skip clean batches by
    catching this type specifically.
    """


class ServeError(ReproError, RuntimeError):
    """The diagnosis service layer failed (bad request, shut-down engine, ...)."""


class ArtifactNotFoundError(ServeError, KeyError):
    """A model name/version is not present in the artifact registry."""


class PayloadTooLargeError(ServeError):
    """A request body exceeds the serving layer's configured size limit."""


class ServiceSaturatedError(ServeError):
    """Admission control rejected a request because every replica queue is full.

    Carries ``retry_after`` (seconds), which HTTP front ends surface as a
    ``Retry-After`` header on the 503 response.
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


class RemoteTransportError(ServeError):
    """A remote diagnosis backend could not be reached (after bounded retries)."""


class CodecError(ServeError):
    """A wire payload could not be decoded by its declared codec.

    Raised by :mod:`repro.wire` codecs on malformed frames — wrong magic,
    truncated array records, dtype/shape headers that disagree with the
    actual byte count, undecodable header JSON.  A client sending garbage
    gets a typed 400, never a 500 or a hung connection.
    """


class UnsupportedMediaTypeError(ServeError):
    """A request names a ``Content-Type``/``Accept`` no registered codec speaks.

    HTTP front ends surface this as a 415 response; the payload's
    ``error_type`` lets clients rebuild this class via
    :func:`exception_from_wire`.
    """


class DeadlineExceededError(ServeError):
    """A request's deadline budget ran out before (or during) a serving stage.

    Carried on the wire as ``X-Deadline-Ms`` (remaining milliseconds) and
    enforced at every stage boundary (admission, batching, extraction); HTTP
    front ends surface it as a 504 — crucially *before* the diagnosis work is
    spent, so a caller that has already given up costs nothing downstream.
    """


class CircuitOpenError(ServeError):
    """A client-side circuit breaker is open; the call was refused locally.

    Raised by :class:`~repro.resilience.CircuitBreaker` instead of hitting a
    server that has been failing consecutively — the client's contribution to
    not extending an outage with a retry storm.  Carries ``retry_after``
    (seconds until the breaker's next half-open probe window).
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


class MonitorOverflowError(ServeError):
    """The monitoring window could not keep every observation it was offered.

    The online serving path *never* raises this — there, an overfull or
    contended window silently drops the observation and bumps a counter (the
    same non-blocking discipline :mod:`repro.obs` uses).  Strict callers (the
    offline ``repro-monitor`` trace replay, tests) opt into the exception via
    ``MonitorWindow.append_strict`` so silent data loss cannot corrupt an
    analysis.  Carries ``dropped``, the number of observations lost.
    """

    def __init__(self, message: str, dropped: int = 0):
        super().__init__(message)
        self.dropped = int(dropped)


#: HTTP status -> exception class used when a response carries no (or an
#: unknown) ``error_type``.  Covers every error status the front ends emit
#: for exception-derived failures.
_STATUS_FALLBACK: Dict[int, Type[ReproError]] = {
    400: ServeError,
    404: ArtifactNotFoundError,
    408: RemoteTransportError,
    413: PayloadTooLargeError,
    415: UnsupportedMediaTypeError,
    429: MonitorOverflowError,
    503: ServiceSaturatedError,
    504: DeadlineExceededError,
}


def _wire_classes() -> Dict[str, Type[ReproError]]:
    registry: Dict[str, Type[ReproError]] = {}
    for name in __all__:
        candidate = globals().get(name)
        if isinstance(candidate, type) and issubclass(candidate, ReproError):
            registry[name] = candidate
    return registry


def exception_from_wire(
    status: int,
    message: str,
    error_type: Optional[str] = None,
    retry_after: Optional[float] = None,
) -> ReproError:
    """Rebuild the typed exception behind one HTTP error response.

    ``error_type`` is the class name the server put in the response payload;
    when absent (older servers, proxy-generated bodies) the status code picks
    a sensible fallback.  Only classes of this hierarchy are ever constructed
    — a hostile or corrupted ``error_type`` degrades to the status fallback
    instead of resolving arbitrary names.
    """
    cls = _wire_classes().get(error_type or "")
    if cls is None:
        cls = _STATUS_FALLBACK.get(int(status), ServeError)
    if issubclass(cls, ServiceSaturatedError):
        return cls(message, retry_after=retry_after if retry_after is not None else 1.0)
    return cls(message)
