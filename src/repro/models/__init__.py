"""Model zoo: the four architecture families used in the paper's evaluation."""

from .alexnet import AlexNet
from .base import ClassifierModel
from .densenet import DENSENET40_UNITS, DenseNet
from .lenet import LeNet
from .registry import MODEL_REGISTRY, available_models, build_from_config, build_model
from .resnet import RESNET34_BLOCK_COUNTS, ResNet

__all__ = [
    "ClassifierModel",
    "LeNet",
    "AlexNet",
    "ResNet",
    "DenseNet",
    "RESNET34_BLOCK_COUNTS",
    "DENSENET40_UNITS",
    "MODEL_REGISTRY",
    "build_model",
    "build_from_config",
    "available_models",
]
