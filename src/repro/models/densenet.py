"""DenseNet-family classifier built from dense blocks and transition layers.

The paper uses DenseNet-40 on CIFAR-10: three dense blocks of twelve units
with growth rate 12, separated by compressing transition layers.  This
implementation keeps the layout and exposes the block sizes/growth rate so the
CPU experiments can run a scaled variant of the same family.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..exceptions import ConfigurationError
from ..rng import RngLike, ensure_rng, spawn
from ..nn.layers import (
    BatchNorm2D,
    Conv2D,
    Dense,
    DenseBlock,
    GlobalAvgPool2D,
    ReLU,
    Sequential,
    TransitionLayer,
)
from .base import ClassifierModel

__all__ = ["DenseNet", "DENSENET40_UNITS"]

#: Units per dense block of the original DenseNet-40 (growth rate 12).
DENSENET40_UNITS: Tuple[int, ...] = (12, 12, 12)


class DenseNet(ClassifierModel):
    """CIFAR-style DenseNet.

    Parameters
    ----------
    growth_rate:
        Number of feature maps each dense unit adds.
    units_per_block:
        Number of dense units in each dense block.  ``(12, 12, 12)`` with
        ``growth_rate=12`` reproduces DenseNet-40; the default ``(3, 3, 3)``
        with ``growth_rate=6`` is the scaled CPU variant.
    compression:
        Channel-compression factor of the transition layers, in ``(0, 1]``.
    """

    KIND = "densenet"

    def __init__(
        self,
        input_shape: Tuple[int, int, int] = (3, 16, 16),
        num_classes: int = 10,
        growth_rate: int = 6,
        units_per_block: Sequence[int] = (3, 3, 3),
        compression: float = 0.5,
        use_batchnorm: bool = True,
        rng: RngLike = None,
        name: Optional[str] = None,
    ):
        if len(input_shape) != 3:
            raise ConfigurationError(f"input_shape must be (C, H, W), got {input_shape}")
        units_per_block = tuple(int(u) for u in units_per_block)
        if not units_per_block or any(u <= 0 for u in units_per_block):
            raise ConfigurationError(
                f"units_per_block must be non-empty and positive, got {units_per_block}"
            )
        if growth_rate <= 0:
            raise ConfigurationError(f"growth_rate must be positive, got {growth_rate}")
        if not 0.0 < compression <= 1.0:
            raise ConfigurationError(f"compression must lie in (0, 1], got {compression}")

        generator = ensure_rng(rng)
        rngs = spawn(generator, 2 * len(units_per_block) + 2)
        rng_iter = iter(rngs)

        stages = Sequential(name="stages")
        shape = tuple(int(d) for d in input_shape)

        stem_channels = 2 * growth_rate
        stem_layers = [
            Conv2D(shape[0], stem_channels, 3, stride=1, padding=1,
                   use_bias=not use_batchnorm, rng=next(rng_iter), name="conv"),
        ]
        if use_batchnorm:
            stem_layers.append(BatchNorm2D(stem_channels, name="bn"))
        stem_layers.append(ReLU(name="relu"))
        stem = Sequential(stem_layers, name="stem")
        stages.append(stem)
        shape = stem.output_shape(shape)

        channels = stem_channels
        for block_idx, num_units in enumerate(units_per_block):
            block = DenseBlock(
                channels,
                growth_rate,
                num_units,
                use_batchnorm=use_batchnorm,
                rng=next(rng_iter),
                name=f"dense{block_idx + 1}",
            )
            stages.append(block)
            shape = block.output_shape(shape)
            channels = block.out_channels

            is_last = block_idx == len(units_per_block) - 1
            if not is_last and shape[1] >= 4 and shape[2] >= 4:
                out_channels = max(1, int(channels * compression))
                transition = TransitionLayer(
                    channels,
                    out_channels,
                    use_batchnorm=use_batchnorm,
                    rng=next(rng_iter),
                    name=f"transition{block_idx + 1}",
                )
                stages.append(transition)
                shape = transition.output_shape(shape)
                channels = out_channels

        stages.append(GlobalAvgPool2D(name="gap"))
        stages.append(Dense(channels, num_classes, rng=next(rng_iter), name="logits"))

        super().__init__(
            stages=stages,
            input_shape=input_shape,
            num_classes=num_classes,
            kind=self.KIND,
            hyperparameters={
                "growth_rate": growth_rate,
                "units_per_block": list(units_per_block),
                "compression": compression,
                "use_batchnorm": use_batchnorm,
            },
            name=name,
        )
