"""LeNet-family convolutional classifier.

The paper uses LeNet (5 weight layers) as its small MNIST model.  This
implementation keeps the classic conv-pool-conv-pool-fc-fc-fc structure but
parameterizes the channel widths and dense sizes so the architecture scales
down to the synthetic workloads, and so structure-defect injection can remove
convolution stages (see :mod:`repro.defects.structure`).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..exceptions import ConfigurationError
from ..rng import RngLike, ensure_rng, spawn
from ..nn.layers import (
    BatchNorm2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
)
from .base import ClassifierModel

__all__ = ["LeNet"]


class LeNet(ClassifierModel):
    """LeNet-style CNN: alternating conv/pool stages followed by dense layers.

    Parameters
    ----------
    input_shape:
        ``(channels, height, width)`` of one input image.
    num_classes:
        Number of target classes.
    conv_channels:
        Output channels of each convolution stage.  An empty tuple produces a
        pure multi-layer perceptron (the most extreme structure defect).
    dense_units:
        Hidden sizes of the fully-connected stages before the logits.
    kernel_size:
        Convolution kernel size.
    use_batchnorm:
        Whether convolution stages include batch normalization.
    dropout:
        Dropout rate applied after each dense stage (0 disables).
    """

    KIND = "lenet"

    def __init__(
        self,
        input_shape: Tuple[int, int, int] = (1, 14, 14),
        num_classes: int = 10,
        conv_channels: Sequence[int] = (6, 16),
        dense_units: Sequence[int] = (120, 84),
        kernel_size: int = 5,
        use_batchnorm: bool = False,
        dropout: float = 0.0,
        rng: RngLike = None,
        name: Optional[str] = None,
    ):
        if len(input_shape) != 3:
            raise ConfigurationError(f"input_shape must be (C, H, W), got {input_shape}")
        conv_channels = tuple(int(c) for c in conv_channels)
        dense_units = tuple(int(u) for u in dense_units)
        if any(c <= 0 for c in conv_channels) or any(u <= 0 for u in dense_units):
            raise ConfigurationError("channel and unit counts must be positive")
        if not dense_units:
            raise ConfigurationError("LeNet needs at least one dense stage before the logits")

        generator = ensure_rng(rng)
        rngs = spawn(generator, len(conv_channels) + len(dense_units) + 1)
        rng_iter = iter(rngs)

        stages = Sequential(name="stages")
        shape = tuple(int(d) for d in input_shape)

        in_channels = shape[0]
        for i, out_channels in enumerate(conv_channels):
            stage_layers = [
                Conv2D(in_channels, out_channels, kernel_size, stride=1, padding="same",
                       rng=next(rng_iter), name="conv"),
            ]
            if use_batchnorm:
                stage_layers.append(BatchNorm2D(out_channels, name="bn"))
            stage_layers.append(ReLU(name="relu"))
            # Pool while the spatial resolution can still afford it.
            if shape[1] >= 4 and shape[2] >= 4:
                stage_layers.append(MaxPool2D(2, name="pool"))
            stage = Sequential(stage_layers, name=f"conv{i + 1}")
            stages.append(stage)
            shape = stage.output_shape(shape)
            in_channels = out_channels

        stages.append(Flatten(name="flatten"))
        shape = (int(_prod(shape)),)

        in_features = shape[0]
        for i, units in enumerate(dense_units):
            stage_layers = [Dense(in_features, units, rng=next(rng_iter), name="fc"), ReLU(name="relu")]
            if dropout > 0:
                stage_layers.append(Dropout(dropout, rng=next(iter(spawn(generator, 1))), name="drop"))
            stages.append(Sequential(stage_layers, name=f"fc{i + 1}"))
            in_features = units

        stages.append(Dense(in_features, num_classes, rng=next(rng_iter), name="logits"))

        super().__init__(
            stages=stages,
            input_shape=input_shape,
            num_classes=num_classes,
            kind=self.KIND,
            hyperparameters={
                "conv_channels": list(conv_channels),
                "dense_units": list(dense_units),
                "kernel_size": kernel_size,
                "use_batchnorm": use_batchnorm,
                "dropout": dropout,
            },
            name=name,
        )


def _prod(shape: Sequence[int]) -> int:
    total = 1
    for dim in shape:
        total *= int(dim)
    return total
