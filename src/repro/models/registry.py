"""Model registry: build any model-zoo architecture from its name and config.

The registry is the single place where architecture names map to classes.  It
serves three clients: the CLI (``--model lenet``), serialization (rebuilding a
model from its saved config), and structure-defect injection (rebuilding a
*degraded* variant of a model from a modified config).
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

from ..exceptions import ConfigurationError
from ..rng import RngLike
from .alexnet import AlexNet
from .base import ClassifierModel
from .densenet import DenseNet
from .lenet import LeNet
from .resnet import ResNet

__all__ = ["MODEL_REGISTRY", "build_model", "build_from_config", "available_models"]

MODEL_REGISTRY: Dict[str, Type[ClassifierModel]] = {
    LeNet.KIND: LeNet,
    AlexNet.KIND: AlexNet,
    ResNet.KIND: ResNet,
    DenseNet.KIND: DenseNet,
}


def available_models() -> Tuple[str, ...]:
    """Names of all registered architectures."""
    return tuple(sorted(MODEL_REGISTRY))


def build_model(
    kind: str,
    input_shape: Tuple[int, int, int],
    num_classes: int,
    rng: RngLike = None,
    **hyperparameters,
) -> ClassifierModel:
    """Instantiate the architecture registered under ``kind``."""
    key = kind.lower()
    if key not in MODEL_REGISTRY:
        raise ConfigurationError(
            f"unknown model kind {kind!r}; available: {list(available_models())}"
        )
    cls = MODEL_REGISTRY[key]
    return cls(
        input_shape=tuple(input_shape),
        num_classes=int(num_classes),
        rng=rng,
        **hyperparameters,
    )


def build_from_config(config: Dict, rng: RngLike = None) -> ClassifierModel:
    """Rebuild a model from the dict produced by :meth:`ClassifierModel.config`."""
    missing = {"kind", "input_shape", "num_classes"} - set(config)
    if missing:
        raise ConfigurationError(f"model config is missing keys: {sorted(missing)}")
    return build_model(
        config["kind"],
        tuple(config["input_shape"]),
        int(config["num_classes"]),
        rng=rng,
        **dict(config.get("hyperparameters", {})),
    )
