"""ResNet-family classifier built from residual blocks.

The paper uses ResNet-34 on CIFAR-10.  This implementation follows the CIFAR
variant of the architecture — a 3×3 convolution stem, groups of basic residual
blocks that double the channel count and halve the spatial resolution, global
average pooling, and a linear classifier — with configurable group sizes so
experiments can select anything from a tiny ResNet-8-style model up to the
full (3, 4, 6, 3) ResNet-34 layout.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..exceptions import ConfigurationError
from ..rng import RngLike, ensure_rng, spawn
from ..nn.layers import (
    BatchNorm2D,
    Conv2D,
    Dense,
    GlobalAvgPool2D,
    ReLU,
    ResidualBlock,
    Sequential,
)
from .base import ClassifierModel

__all__ = ["ResNet", "RESNET34_BLOCK_COUNTS"]

#: Block-group sizes of the original ResNet-34 (used when running at full scale).
RESNET34_BLOCK_COUNTS: Tuple[int, ...] = (3, 4, 6, 3)


class ResNet(ClassifierModel):
    """CIFAR-style ResNet with basic residual blocks.

    Parameters
    ----------
    base_channels:
        Channel count of the stem and first block group; each later group
        doubles it.
    block_counts:
        Number of residual blocks in each group.  ``(3, 4, 6, 3)`` reproduces
        the ResNet-34 layout; the default ``(2, 2, 2)`` is the scaled variant
        used in CPU experiments.
    use_batchnorm:
        Whether blocks use batch normalization.
    """

    KIND = "resnet"

    def __init__(
        self,
        input_shape: Tuple[int, int, int] = (3, 16, 16),
        num_classes: int = 10,
        base_channels: int = 16,
        block_counts: Sequence[int] = (2, 2, 2),
        use_batchnorm: bool = True,
        rng: RngLike = None,
        name: Optional[str] = None,
    ):
        if len(input_shape) != 3:
            raise ConfigurationError(f"input_shape must be (C, H, W), got {input_shape}")
        block_counts = tuple(int(b) for b in block_counts)
        if not block_counts or any(b <= 0 for b in block_counts):
            raise ConfigurationError(f"block_counts must be non-empty and positive, got {block_counts}")
        if base_channels <= 0:
            raise ConfigurationError(f"base_channels must be positive, got {base_channels}")

        generator = ensure_rng(rng)
        total_blocks = sum(block_counts)
        rngs = spawn(generator, total_blocks + 2)
        rng_iter = iter(rngs)

        stages = Sequential(name="stages")
        shape = tuple(int(d) for d in input_shape)

        # Stem: 3x3 convolution that sets the base channel width.
        stem_layers = [
            Conv2D(shape[0], base_channels, 3, stride=1, padding=1,
                   use_bias=not use_batchnorm, rng=next(rng_iter), name="conv"),
        ]
        if use_batchnorm:
            stem_layers.append(BatchNorm2D(base_channels, name="bn"))
        stem_layers.append(ReLU(name="relu"))
        stem = Sequential(stem_layers, name="stem")
        stages.append(stem)
        shape = stem.output_shape(shape)

        in_channels = base_channels
        for group, num_blocks in enumerate(block_counts):
            out_channels = base_channels * (2 ** group)
            for block_idx in range(num_blocks):
                # The first block of every group after the first downsamples,
                # provided the feature map is still large enough to halve.
                stride = 2 if (group > 0 and block_idx == 0 and shape[1] >= 4) else 1
                block = ResidualBlock(
                    in_channels,
                    out_channels,
                    stride=stride,
                    use_batchnorm=use_batchnorm,
                    rng=next(rng_iter),
                    name=f"block{group + 1}_{block_idx + 1}",
                )
                stages.append(block)
                shape = block.output_shape(shape)
                in_channels = out_channels

        stages.append(GlobalAvgPool2D(name="gap"))
        stages.append(Dense(in_channels, num_classes, rng=next(rng_iter), name="logits"))

        super().__init__(
            stages=stages,
            input_shape=input_shape,
            num_classes=num_classes,
            kind=self.KIND,
            hyperparameters={
                "base_channels": base_channels,
                "block_counts": list(block_counts),
                "use_batchnorm": use_batchnorm,
            },
            name=name,
        )
