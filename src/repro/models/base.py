"""Base class shared by the model zoo.

A :class:`ClassifierModel` is a :class:`~repro.nn.layers.Sequential` of named
*stages* whose final stage produces class logits.  Stages are the unit of
DeepMorph's data-flow analysis: ``forward_collect`` returns each stage's
output, and ``hidden_layer_names`` lists the stages that receive auxiliary
softmax probes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError, ShapeError
from ..nn import functional as F
from ..nn.dtype import as_compute
from ..nn.layers import Sequential
from ..nn.module import Layer

__all__ = ["ClassifierModel"]


class ClassifierModel(Layer):
    """A classification network composed of named sequential stages.

    Parameters
    ----------
    stages:
        The ordered stages.  The last stage must emit logits of shape
        ``(batch, num_classes)``.
    input_shape:
        Shape of one input example, e.g. ``(1, 14, 14)``.
    num_classes:
        Number of target classes.
    kind:
        Registry name of the architecture (``"lenet"``, ``"resnet"``, ...).
    hyperparameters:
        The constructor keyword arguments needed to rebuild the same
        architecture (used by serialization and structure-defect injection).
    """

    def __init__(
        self,
        stages: Sequential,
        input_shape: Tuple[int, ...],
        num_classes: int,
        kind: str,
        hyperparameters: Optional[Dict] = None,
        name: Optional[str] = None,
    ):
        super().__init__(name=name or kind)
        if num_classes < 2:
            raise ConfigurationError(f"num_classes must be >= 2, got {num_classes}")
        if len(stages) < 2:
            raise ConfigurationError("a classifier model needs at least two stages")
        self.stages = self.add_child(stages)
        self.input_shape = tuple(int(d) for d in input_shape)
        self.num_classes = int(num_classes)
        self.kind = str(kind)
        self.hyperparameters: Dict = dict(hyperparameters or {})

    # -- computation ---------------------------------------------------------

    def _check_input(self, x: np.ndarray) -> np.ndarray:
        x = as_compute(x)
        if x.ndim != len(self.input_shape) + 1:
            raise ShapeError(
                f"{self.kind} expects batched inputs of shape (n, {', '.join(map(str, self.input_shape))}), "
                f"got shape {x.shape}"
            )
        if tuple(x.shape[1:]) != self.input_shape:
            raise ShapeError(
                f"{self.kind} was built for inputs of shape {self.input_shape}, got {tuple(x.shape[1:])}"
            )
        return x

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Return logits of shape ``(batch, num_classes)``."""
        return self.stages.forward(self._check_input(x))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.stages.backward(grad_out)

    def forward_collect(self, x: np.ndarray) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """Forward pass that also returns the output of every stage by name."""
        return self.stages.forward_with_activations(self._check_input(x))

    # -- prediction helpers ----------------------------------------------------

    def predict_logits(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Logits computed in inference mode, batched to bound memory."""
        x = self._check_input(x)
        was_training = self.training
        self.eval()
        try:
            outputs: List[np.ndarray] = []
            for start in range(0, x.shape[0], batch_size):
                outputs.append(self.stages.forward(x[start:start + batch_size]))
            return np.concatenate(outputs, axis=0) if outputs else np.zeros((0, self.num_classes))
        finally:
            self.train(was_training)

    def predict_proba(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Softmax class probabilities."""
        return F.softmax(self.predict_logits(x, batch_size=batch_size), axis=1)

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Predicted class ids."""
        return self.predict_logits(x, batch_size=batch_size).argmax(axis=1)

    # -- introspection -----------------------------------------------------------

    def stage_names(self) -> List[str]:
        """Names of all stages, in execution order."""
        return self.stages.layer_names()

    def hidden_layer_names(self) -> List[str]:
        """Names of the stages DeepMorph instruments (every stage but the final logits)."""
        return self.stage_names()[:-1]

    def output_layer_name(self) -> str:
        """Name of the final (logit-producing) stage."""
        return self.stage_names()[-1]

    def config(self) -> Dict:
        """Everything needed to rebuild an architecturally identical model."""
        return {
            "kind": self.kind,
            "input_shape": list(self.input_shape),
            "num_classes": self.num_classes,
            "hyperparameters": dict(self.hyperparameters),
        }

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(kind={self.kind!r}, input_shape={self.input_shape}, "
            f"classes={self.num_classes}, stages={len(self.stages)}, "
            f"params={self.num_parameters()})"
        )
