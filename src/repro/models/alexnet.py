"""AlexNet-family convolutional classifier.

The paper uses AlexNet (8 weight layers) as its larger MNIST model.  This
implementation keeps the family's signature — a deeper stack of convolution
stages, pooling concentrated early and late, and a two-layer dense classifier
with dropout — while scaling channel widths for CPU-sized workloads.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..exceptions import ConfigurationError
from ..rng import RngLike, ensure_rng, spawn
from ..nn.layers import (
    BatchNorm2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
)
from .base import ClassifierModel

__all__ = ["AlexNet"]


class AlexNet(ClassifierModel):
    """Scaled AlexNet: five convolution stages and a dropout-regularized dense head.

    Parameters
    ----------
    conv_channels:
        Output channels of the convolution stages (the original has five).
    dense_units:
        Hidden sizes of the dense stages before the logits.
    pool_after:
        Indices (0-based) of convolution stages followed by 2×2 max pooling.
        Pooling is skipped automatically once the spatial size drops below 4.
    dropout:
        Dropout rate of the dense stages.
    """

    KIND = "alexnet"

    def __init__(
        self,
        input_shape: Tuple[int, int, int] = (1, 14, 14),
        num_classes: int = 10,
        conv_channels: Sequence[int] = (16, 32, 48, 48, 32),
        dense_units: Sequence[int] = (64, 64),
        pool_after: Sequence[int] = (0, 1, 4),
        kernel_size: int = 3,
        dropout: float = 0.3,
        use_batchnorm: bool = False,
        rng: RngLike = None,
        name: Optional[str] = None,
    ):
        if len(input_shape) != 3:
            raise ConfigurationError(f"input_shape must be (C, H, W), got {input_shape}")
        conv_channels = tuple(int(c) for c in conv_channels)
        dense_units = tuple(int(u) for u in dense_units)
        pool_after = tuple(int(i) for i in pool_after)
        if any(c <= 0 for c in conv_channels) or any(u <= 0 for u in dense_units):
            raise ConfigurationError("channel and unit counts must be positive")
        if not dense_units:
            raise ConfigurationError("AlexNet needs at least one dense stage before the logits")
        if not 0.0 <= dropout < 1.0:
            raise ConfigurationError(f"dropout must lie in [0, 1), got {dropout}")

        generator = ensure_rng(rng)
        rngs = spawn(generator, len(conv_channels) + 2 * len(dense_units) + 1)
        rng_iter = iter(rngs)

        stages = Sequential(name="stages")
        shape = tuple(int(d) for d in input_shape)

        in_channels = shape[0]
        for i, out_channels in enumerate(conv_channels):
            stage_layers = [
                Conv2D(in_channels, out_channels, kernel_size, stride=1, padding="same",
                       rng=next(rng_iter), name="conv"),
            ]
            if use_batchnorm:
                stage_layers.append(BatchNorm2D(out_channels, name="bn"))
            stage_layers.append(ReLU(name="relu"))
            if i in pool_after and shape[1] >= 4 and shape[2] >= 4:
                stage_layers.append(MaxPool2D(2, name="pool"))
            stage = Sequential(stage_layers, name=f"conv{i + 1}")
            stages.append(stage)
            shape = stage.output_shape(shape)
            in_channels = out_channels

        stages.append(Flatten(name="flatten"))
        in_features = 1
        for dim in shape:
            in_features *= int(dim)

        for i, units in enumerate(dense_units):
            stage_layers = [Dense(in_features, units, rng=next(rng_iter), name="fc"), ReLU(name="relu")]
            if dropout > 0:
                stage_layers.append(Dropout(dropout, rng=next(rng_iter), name="drop"))
            stages.append(Sequential(stage_layers, name=f"fc{i + 1}"))
            in_features = units

        stages.append(Dense(in_features, num_classes, rng=next(rng_iter), name="logits"))

        super().__init__(
            stages=stages,
            input_shape=input_shape,
            num_classes=num_classes,
            kind=self.KIND,
            hyperparameters={
                "conv_channels": list(conv_channels),
                "dense_units": list(dense_units),
                "pool_after": list(pool_after),
                "kernel_size": kernel_size,
                "dropout": dropout,
                "use_batchnorm": use_batchnorm,
            },
            name=name,
        )
