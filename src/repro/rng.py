"""Seeded random-number-generation helpers.

Reproducibility is a first-class requirement for a defect-localization tool:
the same (model, dataset, defect, seed) tuple must always produce the same
diagnosis.  All stochastic components in the library therefore accept either a
``numpy.random.Generator`` or an integer seed and route it through
:func:`ensure_rng`, never through the global numpy random state.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]

_DEFAULT_SEED = 0


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    Parameters
    ----------
    rng:
        ``None`` (use the library default seed), an integer seed, or an
        existing generator (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng(_DEFAULT_SEED)
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"rng must be None, an int seed, or a numpy Generator, got {type(rng)!r}")


def spawn(rng: RngLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Children are derived deterministically, so spawning is itself
    reproducible.  Useful when a component needs independent randomness for
    several sub-components (e.g. one stream per probe).
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**31 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]


def seed_everything(seed: int) -> np.random.Generator:
    """Create the canonical generator for an experiment run.

    A thin alias of ``np.random.default_rng(seed)`` that exists so experiment
    code reads as intent ("seed everything for this run") rather than
    mechanism.
    """
    return np.random.default_rng(int(seed))


def derive_seed(base_seed: int, *components: object) -> int:
    """Derive a deterministic sub-seed from a base seed and arbitrary labels.

    The experiment harness uses this to give every (model, dataset, defect,
    trial) cell its own independent—but reproducible—seed:

    >>> derive_seed(7, "lenet", "itd", 0) == derive_seed(7, "lenet", "itd", 0)
    True
    >>> derive_seed(7, "lenet", "itd", 0) != derive_seed(7, "lenet", "utd", 0)
    True
    """
    text = ":".join([str(int(base_seed))] + [repr(c) for c in components])
    # A small, stable FNV-1a hash keeps derivation independent of PYTHONHASHSEED.
    h = 2166136261
    for byte in text.encode("utf-8"):
        h ^= byte
        h = (h * 16777619) % (2**32)
    return int(h)
