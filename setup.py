"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so the package can also be installed in environments whose tooling predates
PEP 660 editable installs (no ``wheel`` package available), via
``pip install -e . --no-build-isolation`` or ``python setup.py develop``.
"""

from setuptools import setup

setup()
